"""Shard worker process: one durable ``CheckingService`` per owned uid.

A worker is a single-threaded process serving length-prefixed JSON
frames (:mod:`repro.service.net.frames`) over a unix socket.  It owns
the uids its position on the consistent-hash ring assigns to it —
ownership is *re-derived and enforced here*, so a confused router can
never make two workers mutate the same document group — and it lazily
opens one :meth:`CheckingService.open_durable
<repro.service.store.CheckingService.open_durable>` per uid under its
own state directory (``shard-<uid>/``).  Because ``open_durable`` on a
directory that already holds durable state *is* recovery, a worker
restarted by the supervisor after a crash heals every shard it owns on
first touch.

Frame ops (referenced by the HTTP edge; schema in ``docs/testing.md``):

``ping``, ``update``, ``check``, ``check_batch``, ``read``,
``recover``, ``arm`` (test-only, gated by
:attr:`~repro.service.net.config.ServiceConfig.allow_test_ops`) and
``drain``.  Every response carries ``ok``; failures add ``code`` +
``error``.

Crash semantics: when an armed failpoint fires and either the shard's
write-ahead log marked itself crashed (``persistence.*`` seams) or the
arming requested kill-on-fault, the worker ``os._exit``\\ s without
replying — exactly what a SIGKILL mid-request looks like to the front
end, with the on-disk artifacts (torn record, logged-but-unapplied
update) left for recovery, never tidied by the dying process.
"""

from __future__ import annotations

import os
import socket
import sys
from pathlib import Path

from repro.core.guard import UpdateDecision
from repro.errors import RecoveryError, ReproError
from repro.service.net.config import ServiceConfig
from repro.service.net.frames import FrameError, recv_frame, send_frame
from repro.service.net.ring import HashRing
from repro.service.store import CheckingService, DocumentStore
from repro.testing.failpoints import FailPointError, fail
from repro.xtree.serializer import serialize
from repro.xupdate.parser import canonical_update_text

__all__ = [
    "SHARD_DIR_PREFIX",
    "ShardWorker",
    "decision_to_json",
    "worker_main",
]

#: shard state directories are ``<state_dir>/shard-<uid>`` — the uid is
#: validated path-safe by :meth:`DocumentStore.validate_uid` first
SHARD_DIR_PREFIX = "shard-"

#: exit status of a simulated kill (distinguishable from a clean exit
#: and from python tracebacks in the supervisor's logs)
KILLED_EXIT_STATUS = 70


def decision_to_json(decision: UpdateDecision) -> dict:
    """The wire form of one checker decision (shared with the tests'
    oracle comparison, so both sides serialize identically)."""
    return {
        "legal": decision.legal,
        "applied": decision.applied,
        "violated": list(decision.violated),
        "optimized": decision.optimized,
    }


class ShardWorker:
    """The request handler: ring ownership + per-uid durable services."""

    def __init__(self, worker_id: int, worker_count: int,
                 state_dir: "str | Path",
                 config: ServiceConfig) -> None:
        self.worker_id = worker_id
        self.ring = HashRing(range(worker_count))
        self.state_dir = Path(state_dir)
        self.config = config
        self.schema = config.build_schema()
        self.services: dict[str, CheckingService] = {}
        self.draining = False
        self._kill_on_fault = False

    # -- shard management ---------------------------------------------------

    def shard_dir(self, uid: str) -> Path:
        return self.state_dir / (SHARD_DIR_PREFIX + uid)

    def service_for(self, uid: str) -> CheckingService:
        service = self.services.get(uid)
        if service is None:
            # an existing state directory wins over the seed corpus:
            # open_durable recovers it (restart-and-replay)
            service = CheckingService.open_durable(
                self.schema, self.config.initial_documents(),
                self.shard_dir(uid),
                snapshot_interval=self.config.snapshot_interval,
                sync=self.config.sync_writes)
            self.services[uid] = service
        return service

    def close(self) -> None:
        for service in self.services.values():
            service.close()
        self.services.clear()

    def _wal_crashed(self) -> bool:
        return any(service.wal_crashed
                   for service in self.services.values())

    # -- dispatch -----------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """One request frame → one response frame (never raises)."""
        try:
            return self._dispatch(request)
        except FailPointError as error:
            if self._kill_on_fault or self._wal_crashed():
                # simulated kill: die without replying, leaving the
                # on-disk crash artifacts exactly as a SIGKILL would
                os._exit(KILLED_EXIT_STATUS)
            return {"ok": False, "code": "injected-fault",
                    "error": str(error)}
        except RecoveryError as error:
            return {"ok": False, "code": error.code,
                    "error": str(error)}
        except ReproError as error:
            return {"ok": False,
                    "code": type(error).__name__,
                    "error": str(error)}
        except Exception as error:  # noqa: BLE001 — keep the worker up
            return {"ok": False, "code": "internal",
                    "error": repr(error)}

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "worker": self.worker_id,
                    "pid": os.getpid()}
        if op == "drain":
            self.draining = True
            closed = len(self.services)
            self.close()
            return {"ok": True, "closed": closed}
        if op == "arm":
            return self._op_arm(request)
        if op in ("update", "check", "check_batch", "read", "recover"):
            uid = request.get("uid")
            if not isinstance(uid, str):
                return {"ok": False, "code": "bad-uid",
                        "error": "request needs a string 'uid'"}
            DocumentStore.validate_uid(uid)
            owner = self.ring.owner(uid)
            if owner != self.worker_id:
                # ownership is enforced here, not just at the router
                return {"ok": False, "code": "not-owner",
                        "owner": owner,
                        "error": f"uid {uid!r} is owned by worker "
                                 f"{owner}, not {self.worker_id}"}
            return getattr(self, f"_op_{op}")(uid, request)
        return {"ok": False, "code": "bad-op",
                "error": f"unknown op {op!r}"}

    # -- ops ----------------------------------------------------------------

    def _op_update(self, uid: str, request: dict) -> dict:
        update = request.get("update")
        if not isinstance(update, str):
            return {"ok": False, "code": "bad-request",
                    "error": "update op needs a string 'update'"}
        decision = self.service_for(uid).try_execute(update)
        return {"ok": True, "decision": decision_to_json(decision)}

    def _op_check(self, uid: str, request: dict) -> dict:
        violations = self.service_for(uid).verify_consistency()
        return {"ok": True, "violations": list(violations)}

    def _op_check_batch(self, uid: str, request: dict) -> dict:
        updates = request.get("updates")
        if not isinstance(updates, list) \
                or not all(isinstance(u, str) for u in updates):
            return {"ok": False, "code": "bad-request",
                    "error": "check_batch op needs a list of "
                             "string 'updates'"}
        decisions = self.service_for(uid).check_batch(list(updates))
        return {"ok": True,
                "decisions": [decision_to_json(d) for d in decisions]}

    def _op_read(self, uid: str, request: dict) -> dict:
        service = self.service_for(uid)
        response = {"ok": True, "documents": service.snapshot()}
        if request.get("with_log"):
            response["log"] = [
                canonical_update_text(entry.update)
                for entry in service.committed_updates()]
        return response

    def _op_recover(self, uid: str, request: dict) -> dict:
        """Force a from-disk recovery of one shard (idempotent)."""
        service = self.services.pop(uid, None)
        if service is not None:
            service.close()
        recovered = CheckingService.recover(
            self.schema, self.shard_dir(uid),
            snapshot_interval=self.config.snapshot_interval,
            sync=self.config.sync_writes)
        self.services[uid] = recovered
        info = recovered.last_recovery
        assert info is not None
        return {"ok": True,
                "snapshot_lsn": info.snapshot_lsn,
                "replayed": info.replayed,
                "total_records": info.total_records,
                "committed": len(recovered.committed_updates()),
                "violations": recovered.verify_consistency()}

    def _op_arm(self, request: dict) -> dict:
        """Arm a failpoint schedule in this worker (chaos tests only)."""
        if not self.config.allow_test_ops:
            return {"ok": False, "code": "forbidden",
                    "error": "test ops are disabled "
                             "(ServiceConfig.allow_test_ops)"}
        spec = request.get("spec")
        if not isinstance(spec, str) or not spec.strip():
            return {"ok": False, "code": "bad-request",
                    "error": "arm op needs a failpoint 'spec'"}
        handle = fail.arm_persistent(spec)
        self._kill_on_fault = bool(request.get("kill", True))
        return {"ok": True, "armed": sorted(handle.counts()),
                "kill": self._kill_on_fault}


# ---------------------------------------------------------------------------
# process entry point
# ---------------------------------------------------------------------------


def _serve_connection(worker: ShardWorker,
                      connection: socket.socket) -> None:
    with connection:
        while True:
            try:
                request = recv_frame(connection)
            except FrameError:
                return  # peer died mid-frame; await a reconnect
            if request is None:
                return
            response = worker.handle(request)
            try:
                send_frame(connection, response)
            except OSError:
                return
            if worker.draining:
                return


def worker_main(worker_id: int, worker_count: int, state_dir: str,
                socket_path: str, config: ServiceConfig) -> None:
    """Entry point of one spawned worker process."""
    worker = ShardWorker(worker_id, worker_count, state_dir, config)
    path = Path(socket_path)
    path.unlink(missing_ok=True)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        server.bind(socket_path)
        server.listen(4)
        while not worker.draining:
            connection, _ = server.accept()
            _serve_connection(worker, connection)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        worker.close()
        server.close()
        path.unlink(missing_ok=True)
    sys.exit(0)
