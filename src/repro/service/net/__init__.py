"""Networked sharded checking service (asyncio edge + worker processes).

The deployment shape of the paper's incremental checking: an asyncio
HTTP/1.1 front end (stdlib only) admits ``update`` / ``check`` /
``check_batch`` / ``read`` / ``recover`` requests and routes each one
by consistent hashing on the document-group uid to one of N worker
processes.  Every worker owns a disjoint set of uids (ownership is
re-verified worker-side, not just at the router), runs one durable
:class:`~repro.service.store.CheckingService` per uid over its own
state directory, and talks to the front end in length-prefixed JSON
frames over a unix socket.  A supervisor restarts dead workers, whose
shards recover from their write-ahead logs on the next touch.

See ``docs/architecture.md`` ("Networked sharded service") for the
request path and ownership rule, and ``docs/testing.md`` for the
endpoint schema the conformance/chaos suite drives.
"""

from repro.service.net.client import ServiceClient
from repro.service.net.config import ServiceConfig
from repro.service.net.frames import FrameError
from repro.service.net.http import ServerThread, ShardedService
from repro.service.net.ring import HashRing
from repro.service.net.supervisor import Supervisor

__all__ = [
    "FrameError",
    "HashRing",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ShardedService",
    "Supervisor",
]
