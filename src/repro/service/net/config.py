"""Picklable service configuration shared by front end and workers.

Worker processes are started with the ``spawn`` context (no inherited
interpreter state), so everything a worker needs to reconstruct its
checking stack travels as plain text in one frozen dataclass: DTDs,
XPathLog denials, registered update patterns, and the initial
documents every new document group starts from.  The front end and the
conformance oracle build their schemas from the *same* config, which
is what makes verdict equality a meaningful assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schema import ConstraintSchema
from repro.xtree.node import Document
from repro.xtree.parser import parse_document

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a worker needs, as picklable text.

    ``documents`` seed every new document group: the first request
    that touches an unknown uid opens a durable service over the
    parsed copies (an existing shard state directory wins and is
    recovered instead).  ``allow_test_ops`` gates the ``arm`` worker
    op the chaos suite uses to schedule deterministic kills; it must
    stay off for real deployments.
    """

    dtds: tuple[str, ...]
    constraints: tuple[str, ...]
    constraint_names: "tuple[str, ...] | None" = None
    patterns: tuple[str, ...] = ()
    documents: tuple[str, ...] = ()
    snapshot_interval: int = 64
    sync_writes: bool = True
    allow_test_ops: bool = False
    #: extra environment for initially spawned workers (worker id →
    #: mapping), applied only on first spawn — restarts come up clean.
    #: Test-only, like ``allow_test_ops``.
    worker_env: "dict[int, dict[str, str]]" = field(default_factory=dict)

    def build_schema(self) -> ConstraintSchema:
        schema = ConstraintSchema(
            list(self.dtds), list(self.constraints),
            names=list(self.constraint_names)
            if self.constraint_names else None)
        for pattern in self.patterns:
            schema.register_pattern(pattern)
        return schema

    def initial_documents(self) -> list[Document]:
        return [parse_document(text) for text in self.documents]
