"""Consistent-hash ring: stable uid → worker assignment.

Each worker is placed on the ring at :data:`DEFAULT_REPLICAS` points
(virtual nodes) derived from a keyed SHA-1, and a uid is owned by the
first worker point at or clockwise after the uid's own hash.  The two
properties the sharded service leans on:

* **stability** — ownership is a pure function of (worker set, uid):
  the router in the front end and the ownership check inside each
  worker build their own ring from the worker count alone and always
  agree;
* **minimal movement** — growing the worker set from N to N+1 workers
  only moves uids *to* the new worker (never between survivors), and
  in expectation only ``1/(N+1)`` of them.

``tests/test_hash_ring.py`` pins both properties with hypothesis.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["DEFAULT_REPLICAS", "HashRing"]

#: virtual nodes per worker — enough that per-worker load and the
#: resize-movement fraction concentrate near their expectations
DEFAULT_REPLICAS = 128


def _hash64(key: str) -> int:
    """Stable 64-bit point for ``key`` (process- and version-stable)."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over worker identifiers.

    ``nodes`` may be any values with a stable ``str()`` (the sharded
    service uses worker indices ``0..N-1``); ``str(node)`` feeds the
    hash, so two rings built from equal node sets are identical.
    """

    def __init__(self, nodes: Iterable[object],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ValueError("replicas must be positive")
        labelled = {str(node): node for node in nodes}
        if not labelled:
            raise ValueError("hash ring needs at least one node")
        if len(labelled) != len(set(labelled.values())):
            raise ValueError("ring nodes must have distinct str() forms")
        self._nodes = labelled
        points: list[tuple[int, str]] = []
        for label in labelled:
            for replica in range(self.replicas):
                points.append((_hash64(f"node:{label}#{replica}"),
                               label))
        # ties (astronomically unlikely) break by label so the order is
        # still a pure function of the node set
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [label for _, label in points]

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def nodes(self) -> list[object]:
        """The node set, in insertion order."""
        return list(self._nodes.values())

    def owner(self, uid: str) -> object:
        """The unique node that owns ``uid``."""
        point = _hash64(f"uid:{uid}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._nodes[self._owners[index]]

    def assignment(self, uids: Iterable[str]) -> dict[str, object]:
        """uid → owner for a whole population (convenience)."""
        return {uid: self.owner(uid) for uid in uids}
