"""Worker-process supervisor: spawn, health, restart-with-recovery.

The supervisor owns the worker process table.  Workers are started
with the ``spawn`` multiprocessing context (a fresh interpreter per
worker — no inherited locks, caches or armed failpoints), each bound
to a unix socket in a short-lived runtime directory (unix socket paths
have a ~100-byte limit, so they never live under the user's state
directory).

Restart policy: a worker found dead is respawned on the *same* worker
id, state directory and socket path, with a clean environment — any
chaos arming that killed its predecessor does not survive it.  The
respawned worker re-opens each shard it owns lazily, and because
opening an existing shard directory is restart-and-replay recovery,
the supervisor restarting a worker *is* ``recover()`` on its state.

All methods are blocking; the asyncio front end calls them through
``asyncio.to_thread``, serialized per worker by its connection lock.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.service.net.config import ServiceConfig
from repro.service.net.frames import recv_frame, send_frame
from repro.service.net.worker import worker_main

__all__ = ["Supervisor", "WorkerUnavailableError"]

#: how long a freshly spawned worker gets to bind its socket and
#: answer a ping (covers interpreter start + schema compilation)
READY_TIMEOUT = 30.0


class WorkerUnavailableError(ReproError):
    """A worker could not be started or never became ready."""


@dataclass
class _WorkerSlot:
    worker_id: int
    socket_path: str
    process: "multiprocessing.process.BaseProcess | None" = None
    restarts: int = 0
    env_once: dict[str, str] = field(default_factory=dict)


class Supervisor:
    """Spawns and babysits the N shard workers."""

    def __init__(self, worker_count: int, state_dir: "str | Path",
                 config: ServiceConfig) -> None:
        if worker_count < 1:
            raise ValueError("need at least one worker")
        self.worker_count = worker_count
        self.state_dir = Path(state_dir)
        self.config = config
        self._context = multiprocessing.get_context("spawn")
        self._runtime_dir = tempfile.mkdtemp(prefix="repro-net-")
        self._slots = [
            _WorkerSlot(
                worker_id=wid,
                socket_path=os.path.join(self._runtime_dir,
                                         f"worker-{wid}.sock"),
                env_once=dict(config.worker_env.get(wid, {})))
            for wid in range(worker_count)]

    # -- accessors ----------------------------------------------------------

    def socket_path(self, worker_id: int) -> str:
        return self._slots[worker_id].socket_path

    def restart_counts(self) -> dict[int, int]:
        return {slot.worker_id: slot.restarts for slot in self._slots}

    def alive(self) -> list[bool]:
        return [slot.process is not None and slot.process.is_alive()
                for slot in self._slots]

    # -- lifecycle ----------------------------------------------------------

    def start_all(self) -> None:
        """Spawn every worker and wait until each answers a ping."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for slot in self._slots:
            self._spawn(slot, extra_env=slot.env_once)
        for slot in self._slots:
            self._wait_ready(slot)

    def _spawn(self, slot: _WorkerSlot,
               extra_env: "dict[str, str] | None" = None) -> None:
        # spawn snapshots os.environ at start(): apply the one-shot
        # test environment around it, then restore
        saved: dict[str, str | None] = {}
        for key, value in (extra_env or {}).items():
            saved[key] = os.environ.get(key)
            os.environ[key] = value
        try:
            process = self._context.Process(
                target=worker_main,
                args=(slot.worker_id, self.worker_count,
                      str(self.state_dir), slot.socket_path,
                      self.config),
                name=f"repro-shard-{slot.worker_id}",
                daemon=True)
            process.start()
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        slot.process = process

    def _wait_ready(self, slot: _WorkerSlot,
                    timeout: float = READY_TIMEOUT) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            process = slot.process
            if process is None or not process.is_alive():
                break
            try:
                with socket.socket(socket.AF_UNIX,
                                   socket.SOCK_STREAM) as probe:
                    probe.settimeout(5.0)
                    probe.connect(slot.socket_path)
                    send_frame(probe, {"op": "ping"})
                    response = recv_frame(probe)
                if response is not None and response.get("ok"):
                    return
            except OSError:
                pass
            time.sleep(0.05)
        raise WorkerUnavailableError(
            f"worker {slot.worker_id} did not become ready within "
            f"{timeout:.0f}s")

    def ensure(self, worker_id: int) -> bool:
        """Restart ``worker_id`` if its process died.

        Returns True when a restart happened (the caller must drop any
        cached connection), False when the process is still alive (the
        failure was a stale connection — reconnect and move on).
        """
        slot = self._slots[worker_id]
        process = slot.process
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():
                return False
        slot.restarts += 1
        # restarts come up with a clean environment: a chaos arming
        # that killed the predecessor must not survive it
        self._spawn(slot, extra_env=None)
        self._wait_ready(slot)
        return True

    def join_all(self, timeout: float = 5.0) -> None:
        """Reap every worker; escalate to terminate/kill on stragglers.

        The graceful half (the ``drain`` frame) is the front end's job
        — it owns the connections; this is the process-table half.
        """
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=2.0)
            slot.process = None
        shutil.rmtree(self._runtime_dir, ignore_errors=True)
