"""Small synchronous HTTP client for the sharded checking service.

Built on stdlib :mod:`http.client` with one kept-alive connection and
transparent reconnect-once — enough for the CLI, the conformance suite
and the chaos tests, without pulling in any dependency.  Every method
returns ``(status, payload)`` where ``payload`` is the decoded JSON
body; transport-level failures raise :class:`ServiceClientError`.
"""

from __future__ import annotations

import http.client
import json

from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ReproError):
    """The service edge could not be reached or spoke garbage."""


class ServiceClient:
    """Talk JSON-over-HTTP to a running :class:`ShardedService`."""

    def __init__(self, host: str, port: int,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: "http.client.HTTPConnection | None" = None

    # -- plumbing -----------------------------------------------------------

    def close(self) -> None:
        connection, self._connection = self._connection, None
        if connection is not None:
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def request(self, path: str, payload: "dict | None" = None,
                method: str = "POST") -> tuple[int, dict]:
        """One round trip; reconnects once on a stale connection."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body,
                                   headers=headers)
                response = connection.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, OSError) as error:
                self.close()
                if attempt:
                    raise ServiceClientError(
                        f"request to {method} {path} failed: "
                        f"{error}") from error
        try:
            decoded = json.loads(data) if data else {}
        except ValueError as error:
            raise ServiceClientError(
                f"non-JSON response from {method} {path}: "
                f"{data[:200]!r}") from error
        if not isinstance(decoded, dict):
            raise ServiceClientError(
                f"response from {method} {path} is not a JSON object")
        return response.status, decoded

    # -- endpoints ----------------------------------------------------------

    def update(self, uid: str, update: str) -> tuple[int, dict]:
        return self.request("/update", {"uid": uid, "update": update})

    def check(self, uid: str) -> tuple[int, dict]:
        return self.request("/check", {"uid": uid})

    def check_batch(self, uid: str,
                    updates: list[str]) -> tuple[int, dict]:
        return self.request("/check_batch",
                            {"uid": uid, "updates": list(updates)})

    def read(self, uid: str,
             with_log: bool = False) -> tuple[int, dict]:
        payload: dict = {"uid": uid}
        if with_log:
            payload["with_log"] = True
        return self.request("/read", payload)

    def recover(self, uid: str) -> tuple[int, dict]:
        return self.request("/recover", {"uid": uid})

    def status(self) -> tuple[int, dict]:
        return self.request("/status", None, method="GET")

    def arm(self, worker: int, spec: str,
            kill: bool = True) -> tuple[int, dict]:
        return self.request("/arm", {"worker": worker, "spec": spec,
                                     "kill": kill})
