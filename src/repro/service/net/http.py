"""Asyncio HTTP/1.1 edge: routes requests to shard workers.

Stdlib only: ``asyncio.start_server`` plus a minimal HTTP/1.1 codec
(request line, headers, ``Content-Length`` body; keep-alive).  Every
endpoint takes and returns JSON; the body's ``uid`` picks the owning
worker through the consistent-hash ring, and the frame sent to the
worker carries the op verbatim (see ``docs/testing.md`` for the full
endpoint schema).

Failure policy, the part that makes chaos survivable:

* a worker that dies mid-request is detected by the broken frame
  stream; the supervisor restarts it (recovery happens shard-by-shard
  on next touch);
* *read-path* requests (``check``, ``read``, ``recover``) are retried
  once against the restarted worker — they are idempotent;
* *write-path* requests (``update``, ``check_batch``) are **never**
  retried: the dying worker may have durably logged the update before
  its crash, and a blind retry would double-apply.  The caller gets
  ``503 {"code": "worker-restarted"}`` and decides — the conformance
  suite's "no lost acknowledged update" invariant leans on exactly
  this asymmetry.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path

from repro.errors import ReproError, SchemaError
from repro.service.net.config import ServiceConfig
from repro.service.net.frames import FrameError, read_frame, write_frame
from repro.service.net.ring import HashRing
from repro.service.net.supervisor import Supervisor
from repro.service.store import DocumentStore

__all__ = ["ServerThread", "ShardedService", "WorkerRestartedError"]

_REASONS = {200: "OK", 400: "Bad Request", 403: "Forbidden",
            404: "Not Found", 405: "Method Not Allowed",
            422: "Unprocessable Entity", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: endpoint name → (worker op, retry-once-after-restart?)
_ENDPOINTS: dict[str, tuple[str, bool]] = {
    "update": ("update", False),
    "check": ("check", True),
    "check_batch": ("check_batch", False),
    "read": ("read", True),
    "recover": ("recover", True),
}

#: request-body keys forwarded to the worker, per op
_FORWARDED_KEYS = {
    "update": ("update",),
    "check": (),
    "check_batch": ("updates",),
    "read": ("with_log",),
    "recover": (),
}

_BAD_REQUEST_CODES = frozenset(
    {"bad-uid", "bad-request", "bad-op", "bad-json"})


class WorkerRestartedError(ReproError):
    """A worker died under a request; ``restarted`` says whether the
    supervisor brought a replacement up."""

    def __init__(self, worker_id: int, restarted: bool) -> None:
        self.worker_id = worker_id
        self.restarted = restarted
        state = "was restarted" if restarted else "is unavailable"
        super().__init__(f"worker {worker_id} died mid-request and "
                         f"{state}")


class _WorkerLink:
    """The front end's persistent frame connection to one worker."""

    def __init__(self, worker_id: int, socket_path: str) -> None:
        self.worker_id = worker_id
        self.socket_path = socket_path
        self.lock = asyncio.Lock()
        self.reader: "asyncio.StreamReader | None" = None
        self.writer: "asyncio.StreamWriter | None" = None

    async def connect(self) -> None:
        if self.writer is None:
            self.reader, self.writer = \
                await asyncio.open_unix_connection(self.socket_path)

    async def close(self) -> None:
        writer, self.reader, self.writer = self.writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass


def _status_for(response: dict) -> int:
    if response.get("ok"):
        return 200
    code = response.get("code", "")
    if code in _BAD_REQUEST_CODES:
        return 400
    if code == "forbidden":
        return 403
    if code in ("internal", "not-owner"):
        return 500
    # domain errors (rejected selects, recovery problems, injected
    # faults): the request was understood but cannot be honoured
    return 422


class ShardedService:
    """The asyncio front end over a supervised worker pool."""

    def __init__(self, config: ServiceConfig, state_dir: "str | Path",
                 workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.config = config
        self.host = host
        self.port = port
        self.ring = HashRing(range(workers))
        self.supervisor = Supervisor(workers, state_dir, config)
        self._links = [
            _WorkerLink(wid, self.supervisor.socket_path(wid))
            for wid in range(workers)]
        self._server: "asyncio.base_events.Server | None" = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await asyncio.to_thread(self.supervisor.start_all)
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain workers, reap."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in self._links:
            # the lock queues the drain behind any in-flight request,
            # so a worker finishes what it started before exiting
            async with link.lock:
                try:
                    await link.connect()
                    await write_frame(link.writer, {"op": "drain"})
                    await read_frame(link.reader)
                except OSError:
                    pass
                await link.close()
        await asyncio.to_thread(self.supervisor.join_all)

    # -- worker calls -------------------------------------------------------

    async def _call_worker(self, worker_id: int, request: dict,
                           retry: bool) -> dict:
        link = self._links[worker_id]
        async with link.lock:
            attempts = 2 if retry else 1
            for attempt in range(attempts):
                try:
                    await link.connect()
                    assert link.writer is not None
                    await write_frame(link.writer, request)
                    response = await read_frame(link.reader)
                    if response is None:
                        raise FrameError(
                            "worker closed the connection")
                    return response
                except (OSError, FrameError):
                    await link.close()
                    restarted = await asyncio.to_thread(
                        self.supervisor.ensure, worker_id)
                    if attempt + 1 < attempts:
                        continue
                    raise WorkerRestartedError(
                        worker_id, restarted) from None
            raise AssertionError("unreachable")  # pragma: no cover

    # -- HTTP ---------------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                try:
                    status, payload = await self._dispatch(
                        method, path, body)
                except Exception as error:  # noqa: BLE001 — edge guard
                    status, payload = 500, {
                        "ok": False, "code": "internal",
                        "error": repr(error)}
                data = json.dumps(payload,
                                  ensure_ascii=False).encode("utf-8")
                reason = _REASONS.get(status, "OK")
                head = (f"HTTP/1.1 {status} {reason}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(data)}\r\n"
                        "Connection: keep-alive\r\n\r\n")
                writer.write(head.encode("ascii") + data)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    @staticmethod
    async def _read_request(
            reader: asyncio.StreamReader
    ) -> "tuple[str, str, bytes] | None":
        line = await reader.readline()
        if not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line {line!r}")
        method, target, _version = parts
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> tuple[int, dict]:
        path = path.split("?", 1)[0]
        name = path.strip("/")
        if name == "status":
            if method != "GET":
                return 405, {"ok": False, "code": "bad-op",
                             "error": "status is GET-only"}
            return 200, self._status_payload()
        if method != "POST":
            return 405, {"ok": False, "code": "bad-op",
                         "error": f"{method} not allowed"}
        try:
            payload = json.loads(body) if body else {}
        except ValueError:
            return 400, {"ok": False, "code": "bad-json",
                         "error": "request body is not valid JSON"}
        if not isinstance(payload, dict):
            return 400, {"ok": False, "code": "bad-json",
                         "error": "request body must be a JSON object"}
        if name == "arm":
            return await self._dispatch_arm(payload)
        if name not in _ENDPOINTS:
            return 404, {"ok": False, "code": "not-found",
                         "error": f"no endpoint /{name}"}
        op, retry = _ENDPOINTS[name]
        uid = payload.get("uid")
        if not isinstance(uid, str):
            return 400, {"ok": False, "code": "bad-uid",
                         "error": "request needs a string 'uid'"}
        try:
            DocumentStore.validate_uid(uid)
        except SchemaError as error:
            return 400, {"ok": False, "code": "bad-uid",
                         "error": str(error)}
        worker_id = self.ring.owner(uid)
        request: dict = {"op": op, "uid": uid}
        for key in _FORWARDED_KEYS[op]:
            if key in payload:
                request[key] = payload[key]
        try:
            response = await self._call_worker(worker_id, request,
                                               retry=retry)
        except WorkerRestartedError as error:
            return 503, {"ok": False, "code": "worker-restarted",
                         "worker": worker_id,
                         "restarted": error.restarted,
                         "error": str(error)}
        response.setdefault("worker", worker_id)
        return _status_for(response), response

    async def _dispatch_arm(self, payload: dict) -> tuple[int, dict]:
        """Chaos-test op: arm failpoints inside one worker process."""
        worker_id = payload.get("worker")
        if not isinstance(worker_id, int) \
                or not 0 <= worker_id < len(self._links):
            return 400, {"ok": False, "code": "bad-request",
                         "error": "arm needs a valid integer 'worker'"}
        request = {"op": "arm", "spec": payload.get("spec"),
                   "kill": payload.get("kill", True)}
        try:
            response = await self._call_worker(worker_id, request,
                                               retry=False)
        except WorkerRestartedError as error:
            return 503, {"ok": False, "code": "worker-restarted",
                         "worker": worker_id,
                         "restarted": error.restarted,
                         "error": str(error)}
        return _status_for(response), response

    def _status_payload(self) -> dict:
        return {"ok": True,
                "workers": self.ring.node_count,
                "alive": self.supervisor.alive(),
                "restarts": {str(wid): count for wid, count in
                             self.supervisor.restart_counts().items()},
                "replicas": self.ring.replicas}


class ServerThread:
    """Run a :class:`ShardedService` on a private event loop thread.

    The synchronous face of the service for tests and the CLI:
    ``start()`` blocks until every worker answered a ping and the HTTP
    port is bound; ``stop()`` drains and reaps.  Usable as a context
    manager.
    """

    def __init__(self, config: ServiceConfig, state_dir: "str | Path",
                 workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = ShardedService(config, state_dir,
                                      workers=workers, host=host,
                                      port=port)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-net-edge",
            daemon=True)

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def start(self) -> "ServerThread":
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.service.start(), self._loop)
        try:
            future.result(timeout=120)
        except Exception:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(), self._loop)
        try:
            future.result(timeout=60)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
