"""Length-prefixed JSON frames: the front-end ↔ worker wire format.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (always a JSON object).  The format is symmetric —
requests and responses use the same framing — and deliberately has no
in-band delimiters, so a frame can carry arbitrary serialized XML.

Both sides of the socket are provided: blocking helpers for the
single-threaded worker process, coroutine helpers for the asyncio
front end.  A clean EOF between frames decodes to ``None``; an EOF or
malformed prefix inside a frame raises :class:`FrameError` (for the
front end that distinguishes "worker finished" from "worker died
mid-reply").
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

__all__ = [
    "FrameError",
    "MAX_FRAME",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]

_PREFIX = struct.Struct(">I")
#: refuse frames above 64 MiB — nothing the service exchanges comes
#: close, so a larger prefix is garbage, not a length
MAX_FRAME = 1 << 26


class FrameError(ConnectionError):
    """The peer vanished mid-frame or sent a malformed frame."""


def _encode(payload: dict) -> bytes:
    body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds the "
                         f"{MAX_FRAME}-byte limit")
    return _PREFIX.pack(len(body)) + body


def _decode_length(prefix: bytes) -> int:
    (length,) = _PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds the "
                         f"{MAX_FRAME}-byte limit")
    return length


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body)
    except ValueError as error:
        raise FrameError(f"frame is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise FrameError("frame payload must be a JSON object")
    return payload


# -- blocking side (worker process) -----------------------------------------


def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(_encode(payload))


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """One frame, or ``None`` on a clean EOF between frames."""
    prefix = _recv_exactly(sock, _PREFIX.size)
    if prefix is None:
        return None
    length = _decode_length(prefix)
    body = _recv_exactly(sock, length)
    if body is None:
        raise FrameError("peer closed the connection mid-frame")
    return _decode_body(body)


# -- asyncio side (front end) -----------------------------------------------


async def write_frame(writer: asyncio.StreamWriter,
                      payload: dict) -> None:
    writer.write(_encode(payload))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """One frame, or ``None`` on a clean EOF between frames."""
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError("peer closed the connection mid-frame") \
            from error
    length = _decode_length(prefix)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError("peer closed the connection mid-frame") \
            from error
    return _decode_body(body)
