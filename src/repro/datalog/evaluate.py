"""Conjunctive evaluation of denials over a fact database.

``denial_violations`` returns the bindings that satisfy a denial's body
— i.e. the integrity violations; a consistent state yields none.  The
evaluator is a backtracking join with greedy literal ordering: ground
comparisons are applied as early as possible, database atoms are joined
most-bound-first through the store's hash indexes, and aggregate
conditions run once their correlated variables are bound.

This is both the reference semantics for the simplification procedure's
correctness tests (``Simp_Δ^U(Γ)`` in ``D`` must agree with ``Γ`` in
``D^U``) and the baseline engine for the ablation benchmark comparing
direct Datalog checking against the translated XQuery checks.
"""

from __future__ import annotations

from typing import Iterator

from repro.datalog.atoms import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Literal,
    Negation,
    apply_comparison_op,
)
from repro.datalog.database import FactDatabase
from repro.datalog.denial import Denial
from repro.datalog.subst import Substitution
from repro.datalog.terms import (
    Arithmetic,
    Constant,
    Parameter,
    Term,
    Variable,
)
from repro.errors import DatalogEvaluationError

_UNBOUND = object()


def _term_value(term: Term, env: dict[Variable, object]) -> object:
    """Python value of a term under ``env``, or ``_UNBOUND``."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        return env.get(term, _UNBOUND)
    if isinstance(term, Parameter):
        raise DatalogEvaluationError(
            f"parameter {term} must be instantiated before evaluation")
    if isinstance(term, Arithmetic):
        left = _term_value(term.left, env)
        right = _term_value(term.right, env)
        if left is _UNBOUND or right is _UNBOUND:
            return _UNBOUND
        if not isinstance(left, (int, float)) \
                or not isinstance(right, (int, float)):
            raise DatalogEvaluationError(
                f"arithmetic on non-numeric values: {term}")
        return left + right if term.op == "+" else left - right
    raise DatalogEvaluationError(f"unknown term kind: {term!r}")


def _comparison_ready(comparison: Comparison,
                      env: dict[Variable, object]) -> bool:
    return _term_value(comparison.left, env) is not _UNBOUND \
        and _term_value(comparison.right, env) is not _UNBOUND


def _half_bound_equality(comparison: Comparison,
                         env: dict[Variable, object]) -> bool:
    if comparison.op != "eq":
        return False
    left = _term_value(comparison.left, env)
    right = _term_value(comparison.right, env)
    return (left is _UNBOUND) != (right is _UNBOUND)


def _term_vars(term: Term) -> set[Variable]:
    if isinstance(term, Variable):
        return {term}
    if isinstance(term, Arithmetic):
        return _term_vars(term.left) | _term_vars(term.right)
    return set()


def _choose(literals: list[Literal], env: dict[Variable, object],
            outer_vars_of: dict[int, set[Variable]]) -> int:
    """Index of the cheapest literal to evaluate next."""
    best_index = -1
    best_score = float("inf")
    for index, literal in enumerate(literals):
        if isinstance(literal, Comparison):
            if _comparison_ready(literal, env):
                return index  # free pruning: take it immediately
            score = 1.0 if _half_bound_equality(literal, env) else 50.0
        elif isinstance(literal, Atom):
            bound = sum(
                1 for arg in literal.args
                if _term_value(arg, env) is not _UNBOUND)
            score = 10.0 + (literal.arity() - bound) \
                - (5.0 if bound else 0.0)
        elif isinstance(literal, Negation):
            unbound_shared = sum(
                1 for variable in outer_vars_of[index]
                if env.get(variable, _UNBOUND) is _UNBOUND)
            score = 25.0 + 5.0 * unbound_shared
        else:
            assert isinstance(literal, AggregateCondition)
            correlated = outer_vars_of[index]
            unbound = sum(
                1 for var in correlated
                if env.get(var, _UNBOUND) is _UNBOUND)
            score = 30.0 + 5.0 * unbound
        if score < best_score:
            best_score = score
            best_index = index
    return best_index


def _iter_atom(atom: Atom, env: dict[Variable, object],
               database: FactDatabase) -> Iterator[list[Variable]]:
    """Yield binding trails for rows matching ``atom`` under ``env``."""
    selections: dict[int, object] = {}
    for column, arg in enumerate(atom.args):
        value = _term_value(arg, env)
        if value is not _UNBOUND:
            selections[column] = value
    for row in database.lookup(atom.predicate, selections):
        if len(row) != atom.arity():
            continue
        trail: list[Variable] = []
        consistent = True
        for column, arg in enumerate(atom.args):
            if column in selections:
                continue
            if isinstance(arg, Variable):
                current = env.get(arg, _UNBOUND)
                if current is _UNBOUND:
                    env[arg] = row[column]
                    trail.append(arg)
                elif current != row[column]:
                    consistent = False
                    break
            else:
                # a term that became ground mid-row (repeated variable)
                value = _term_value(arg, env)
                if value is _UNBOUND or value != row[column]:
                    consistent = False
                    break
        if consistent:
            yield trail
        for variable in trail:
            if not consistent:
                del env[variable]
        # when consistent, the caller undoes the trail after recursing


def _solve(literals: list[Literal], env: dict[Variable, object],
           database: FactDatabase) -> Iterator[None]:
    if not literals:
        yield None
        return
    outer_vars_of = {
        index: _correlated_variables(literal, literals, index)
        for index, literal in enumerate(literals)
        if isinstance(literal, (AggregateCondition, Negation))
    }
    index = _choose(literals, env, outer_vars_of)
    literal = literals[index]
    rest = literals[:index] + literals[index + 1:]

    if isinstance(literal, Comparison):
        yield from _solve_comparison(literal, rest, env, database)
    elif isinstance(literal, Atom):
        for trail in _iter_atom(literal, env, database):
            yield from _solve(rest, env, database)
            for variable in trail:
                del env[variable]
    elif isinstance(literal, Negation):
        yield from _solve_negation(literal, rest, env, database)
    else:
        assert isinstance(literal, AggregateCondition)
        yield from _solve_aggregate(literal, rest, env, database)


def _solve_comparison(comparison: Comparison, rest: list[Literal],
                      env: dict[Variable, object],
                      database: FactDatabase) -> Iterator[None]:
    left = _term_value(comparison.left, env)
    right = _term_value(comparison.right, env)
    if left is not _UNBOUND and right is not _UNBOUND:
        try:
            holds = apply_comparison_op(comparison.op, left, right)
        except TypeError:
            holds = False  # values of different kinds are never ordered
        if holds:
            yield from _solve(rest, env, database)
        return
    if comparison.op == "eq" and (left is _UNBOUND) != (right is _UNBOUND):
        variable_side = comparison.left if left is _UNBOUND \
            else comparison.right
        value = right if left is _UNBOUND else left
        if isinstance(variable_side, Variable):
            env[variable_side] = value
            yield from _solve(rest, env, database)
            del env[variable_side]
            return
    # defensive: schemas compiled through ConstraintSchema reject unsafe
    # denials at compile time (lint code XIC201), so this is reachable
    # only for hand-built denials that bypass the safety pass
    from repro.analysis.safety import UNSAFE_COMPARISON
    raise DatalogEvaluationError(
        f"unsafe comparison {comparison}: operands not bound by any "
        f"database literal (lint code {UNSAFE_COMPARISON})")


def _correlated_variables(condition: "AggregateCondition | Negation",
                          literals: list[Literal],
                          index: int) -> set[Variable]:
    """Variables of an aggregate/negation visible outside it."""
    other_vars: set[Variable] = set()
    for other_index, other in enumerate(literals):
        if other_index != index:
            other_vars |= other.variables()
    if isinstance(condition, Negation):
        return condition.variables() & other_vars
    group_vars: set[Variable] = set()
    for term in condition.aggregate.group_by:
        group_vars |= _term_vars(term)
    inner = condition.aggregate.variables()
    return (inner & other_vars) | group_vars | _term_vars(condition.bound)


def _solve_negation(negation: Negation, rest: list[Literal],
                    env: dict[Variable, object],
                    database: FactDatabase) -> Iterator[None]:
    """Negation as failure over the (closed-world) fact database.

    Variables shared with the rest of the denial must be bound before
    the negation runs; inner-only variables are existentially
    quantified under the negation.
    """
    shared: set[Variable] = set()
    for other in rest:
        shared |= other.variables()
    shared &= negation.variables()
    for variable in shared:
        if env.get(variable, _UNBOUND) is _UNBOUND:
            # defensive: compiled schemas reject this at compile time
            # (lint code XIC202); see repro.analysis.safety
            from repro.analysis.safety import UNSAFE_NEGATION
            raise DatalogEvaluationError(
                f"variable {variable} is shared between a negation and "
                "other literals but cannot be bound before the negation "
                f"is evaluated (lint code {UNSAFE_NEGATION})")
    inner_env = dict(env)
    for _ in _solve(list(negation.body), inner_env, database):
        return  # a witness exists: the negation fails
    yield from _solve(rest, env, database)


def _solve_aggregate(condition: AggregateCondition, rest: list[Literal],
                     env: dict[Variable, object],
                     database: FactDatabase) -> Iterator[None]:
    aggregate = condition.aggregate
    shared: set[Variable] = set()
    for other in rest:
        shared |= other.variables()
    shared &= aggregate.variables()
    group_variable_set: set[Variable] = set()
    for term in aggregate.group_by:
        group_variable_set |= _term_vars(term)
    for variable in shared - group_variable_set:
        if env.get(variable, _UNBOUND) is _UNBOUND:
            # defensive: compiled schemas reject this at compile time
            # (lint code XIC203); see repro.analysis.safety
            from repro.analysis.safety import UNSAFE_AGGREGATE
            raise DatalogEvaluationError(
                f"variable {variable} is shared between an aggregate body "
                "and other literals but cannot be bound before the "
                f"aggregate is evaluated (lint code {UNSAFE_AGGREGATE})")
    bound_value = _term_value(condition.bound, env)
    if bound_value is _UNBOUND:
        raise DatalogEvaluationError(
            f"aggregate bound {condition.bound} is not ground")
    group_vars: list[Variable] = []
    for term in aggregate.group_by:
        for variable in sorted(_term_vars(term), key=lambda v: v.name):
            if variable not in group_vars:
                group_vars.append(variable)
    unbound_groups = [
        variable for variable in group_vars
        if env.get(variable, _UNBOUND) is _UNBOUND]

    groups = _aggregate_groups(aggregate, env, database)

    if not unbound_groups:
        value = groups.get((), None)
        if value is None:
            value = _empty_aggregate_value(aggregate)
        if value is not None and _compare(condition.op, value, bound_value):
            yield from _solve(rest, env, database)
        return

    for key, value in groups.items():
        for variable, group_value in zip(unbound_groups, key):
            env[variable] = group_value
        if _compare(condition.op, value, bound_value):
            yield from _solve(rest, env, database)
        for variable in unbound_groups:
            del env[variable]


def _compare(op: str, left: object, right: object) -> bool:
    try:
        return apply_comparison_op(op, left, right)
    except TypeError:
        return False


def _empty_aggregate_value(aggregate: Aggregate) -> object | None:
    """Value over an empty group: 0 for counts and sums, none otherwise."""
    if aggregate.func == "cnt":
        return 0
    if aggregate.func == "sum":
        return 0
    return None


def _aggregate_groups(aggregate: Aggregate, env: dict[Variable, object],
                      database: FactDatabase) -> dict[tuple, object]:
    """Aggregate value per group key (bound group vars contribute ``()``)."""
    group_vars: list[Variable] = []
    for term in aggregate.group_by:
        for variable in sorted(_term_vars(term), key=lambda v: v.name):
            if variable not in group_vars:
                group_vars.append(variable)
    unbound_groups = [
        variable for variable in group_vars
        if env.get(variable, _UNBOUND) is _UNBOUND]

    collected: dict[tuple, list[object]] = {}
    body = list(aggregate.body)
    local_env = dict(env)
    body_vars: set[Variable] = set()
    for atom in body:
        body_vars |= atom.variables()
    for _ in _solve(list(body), local_env, database):
        key = tuple(local_env[variable] for variable in unbound_groups)
        if aggregate.term is None:
            sample: object = tuple(
                local_env.get(variable) for variable in sorted(
                    body_vars, key=lambda v: v.name))
        else:
            sample = _term_value(aggregate.term, local_env)
            if sample is _UNBOUND:
                raise DatalogEvaluationError(
                    f"aggregated term {aggregate.term} not bound by the "
                    "aggregate body")
        collected.setdefault(key, []).append(sample)

    result: dict[tuple, object] = {}
    for key, samples in collected.items():
        if aggregate.distinct:
            deduplicated: list[object] = []
            seen: set[object] = set()
            for sample in samples:
                if sample not in seen:
                    seen.add(sample)
                    deduplicated.append(sample)
            samples = deduplicated
        result[key] = _fold(aggregate.func, samples)
    return result


def _fold(func: str, samples: list[object]) -> object:
    if func == "cnt":
        return len(samples)
    numbers = [sample for sample in samples
               if isinstance(sample, (int, float))]
    if len(numbers) != len(samples):
        raise DatalogEvaluationError(
            f"{func} over non-numeric values")
    if func == "sum":
        return sum(numbers)
    if func == "max":
        return max(numbers)
    if func == "min":
        return min(numbers)
    if func == "avg":
        return sum(numbers) / len(numbers)
    raise DatalogEvaluationError(f"unknown aggregate {func!r}")


def denial_violations(denial: Denial, database: FactDatabase,
                      limit: int | None = None) -> list[Substitution]:
    """Bindings of the denial's variables that satisfy its body.

    An empty result means the constraint holds.  ``limit`` stops the
    search early (``limit=1`` is the pure consistency check).
    """
    if denial.parameters():
        raise DatalogEvaluationError(
            "denial still contains parameters: "
            + ", ".join(sorted(str(p) for p in denial.parameters())))
    env: dict[Variable, object] = {}
    results: list[Substitution] = []
    for _ in _solve(list(denial.body), env, database):
        results.append(Substitution({
            variable: Constant(value)  # type: ignore[arg-type]
            for variable, value in env.items()
        }))
        if limit is not None and len(results) >= limit:
            break
    return results


def denial_holds(denial: Denial, database: FactDatabase) -> bool:
    """True iff the database is consistent with the denial."""
    return not denial_violations(denial, database, limit=1)
