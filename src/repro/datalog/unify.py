"""Unification and one-way matching of terms and atoms.

Parameters are treated as (unknown) constants: a parameter unifies with
itself or with a variable, never with a different parameter or with a
constant — during simplification we may assume neither their equality
nor their inequality.
"""

from __future__ import annotations

from repro.datalog.atoms import Atom
from repro.datalog.subst import Substitution
from repro.datalog.terms import Arithmetic, Constant, Parameter, Term, Variable


def unify_terms(left: Term, right: Term,
                substitution: Substitution | None = None) -> Substitution | None:
    """Most general unifier of two terms, or ``None``."""
    substitution = substitution or Substitution()
    left = substitution.apply_term(left)
    right = substitution.apply_term(right)
    if left == right:
        return substitution
    if isinstance(left, Variable):
        return _bind(substitution, left, right)
    if isinstance(right, Variable):
        return _bind(substitution, right, left)
    if isinstance(left, Arithmetic) and isinstance(right, Arithmetic):
        if left.op != right.op:
            return None
        partial = unify_terms(left.left, right.left, substitution)
        if partial is None:
            return None
        return unify_terms(left.right, right.right, partial)
    return None


def _bind(substitution: Substitution, variable: Variable,
          term: Term) -> Substitution | None:
    if isinstance(term, Arithmetic) and variable in _arith_variables(term):
        return None  # occurs check
    return substitution.bind(variable, term)


def _arith_variables(term: Term) -> set[Variable]:
    if isinstance(term, Variable):
        return {term}
    if isinstance(term, Arithmetic):
        return _arith_variables(term.left) | _arith_variables(term.right)
    return set()


def unify_atoms(left: Atom, right: Atom,
                substitution: Substitution | None = None) -> Substitution | None:
    """Most general unifier of two atoms, or ``None``."""
    if left.predicate != right.predicate or left.arity() != right.arity():
        return None
    substitution = substitution or Substitution()
    for left_arg, right_arg in zip(left.args, right.args):
        result = unify_terms(left_arg, right_arg, substitution)
        if result is None:
            return None
        substitution = result
    return substitution


def match_terms(pattern: Term, target: Term,
                substitution: Substitution | None = None,
                bindable: set[Variable] | None = None) -> Substitution | None:
    """One-way matching: only variables of ``pattern`` may be bound.

    Variables occurring in ``target`` are treated as constants; when a
    pattern variable's image already contains target variables, those
    must match syntactically.  ``bindable`` restricts which variables
    may be bound (``None`` allows any) — θ-subsumption passes the
    variables of the renamed-apart general denial, so that target
    variables flowing into images are never bound.
    """
    substitution = substitution or Substitution()
    pattern = substitution.apply_term(pattern)
    if pattern == target:
        return substitution
    if isinstance(pattern, Variable) \
            and (bindable is None or pattern in bindable):
        return substitution.bind(pattern, target)
    if isinstance(pattern, Arithmetic) and isinstance(target, Arithmetic):
        if pattern.op != target.op:
            return None
        partial = match_terms(pattern.left, target.left, substitution,
                              bindable)
        if partial is None:
            return None
        return match_terms(pattern.right, target.right, partial, bindable)
    return None


def match_atoms(pattern: Atom, target: Atom,
                substitution: Substitution | None = None,
                bindable: set[Variable] | None = None) -> Substitution | None:
    """One-way matching of atoms (see :func:`match_terms`)."""
    if pattern.predicate != target.predicate \
            or pattern.arity() != target.arity():
        return None
    substitution = substitution or Substitution()
    for pattern_arg, target_arg in zip(pattern.args, target.args):
        result = match_terms(pattern_arg, target_arg, substitution, bindable)
        if result is None:
            return None
        substitution = result
    return substitution
