"""Datalog kernel: the deductive-database substrate of the paper.

Constraints are *denials* — headless clauses whose body must never be
satisfiable (section 4.2).  This package provides the term and literal
language (including the boldface *parameters* of section 5 that stand
for constants supplied at update time, and the aggregate conditions of
section 3.1), substitutions and unification, θ-subsumption between
denials (the workhorse of the ``Optimize`` transformation), a fact
database with secondary indexes, and a conjunctive-query evaluator used
both for direct checking and for differential testing of the XQuery
engine.
"""

from repro.datalog.terms import (
    ANONYMOUS_PREFIX,
    Arithmetic,
    Constant,
    Parameter,
    Term,
    Variable,
    fresh_variable,
    is_anonymous,
)
from repro.datalog.atoms import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Literal,
    Negation,
    negate_comparison,
)
from repro.datalog.denial import Denial
from repro.datalog.subst import Substitution
from repro.datalog.unify import match_terms, unify_atoms, unify_terms
from repro.datalog.subsume import subsumes
from repro.datalog.database import FactDatabase
from repro.datalog.evaluate import denial_holds, denial_violations

__all__ = [
    "ANONYMOUS_PREFIX",
    "Arithmetic",
    "Constant",
    "Parameter",
    "Term",
    "Variable",
    "fresh_variable",
    "is_anonymous",
    "Aggregate",
    "AggregateCondition",
    "Atom",
    "Comparison",
    "Literal",
    "Negation",
    "negate_comparison",
    "Denial",
    "Substitution",
    "match_terms",
    "unify_atoms",
    "unify_terms",
    "subsumes",
    "FactDatabase",
    "denial_holds",
    "denial_violations",
]
