"""A fact database: named relations with secondary indexes.

Rows are tuples of plain Python values (``str``/``int``/``float``).
Hash indexes are built lazily per (relation, column) the first time a
lookup selects on that column, then maintained incrementally — the
pattern of a production-grade in-memory store scaled to this library's
needs (the shredded XML documents of section 4.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping

Row = tuple[object, ...]


class FactDatabase:
    """Mutable set of ground facts grouped by predicate."""

    def __init__(self) -> None:
        self._relations: dict[str, list[Row]] = {}
        # (predicate, column) -> value -> list of rows
        self._indexes: dict[tuple[str, int], dict[object, list[Row]]] = {}

    # -- mutation ----------------------------------------------------------

    def add(self, predicate: str, row: Iterable[object]) -> None:
        """Insert one fact.  Duplicate rows are stored once each call
        (bag semantics); the shredder never produces duplicates."""
        stored = tuple(row)
        self._relations.setdefault(predicate, []).append(stored)
        for (pred, column), index in self._indexes.items():
            if pred == predicate and column < len(stored):
                index.setdefault(stored[column], []).append(stored)

    def add_all(self, predicate: str, rows: Iterable[Iterable[object]]) -> None:
        for row in rows:
            self.add(predicate, row)

    def remove(self, predicate: str, row: Iterable[object]) -> bool:
        """Remove one occurrence of a fact; returns whether it existed."""
        stored = tuple(row)
        relation = self._relations.get(predicate)
        if not relation:
            return False
        try:
            relation.remove(stored)
        except ValueError:
            return False
        for (pred, column), index in self._indexes.items():
            if pred == predicate and column < len(stored):
                bucket = index.get(stored[column])
                if bucket is not None:
                    bucket.remove(stored)
                    if not bucket:
                        del index[stored[column]]
        return True

    # -- access ----------------------------------------------------------------

    def predicates(self) -> list[str]:
        return list(self._relations)

    def rows(self, predicate: str) -> list[Row]:
        return self._relations.get(predicate, [])

    def count(self, predicate: str) -> int:
        return len(self._relations.get(predicate, ()))

    def total_facts(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def contains(self, predicate: str, row: Iterable[object]) -> bool:
        return tuple(row) in self._relations.get(predicate, ())

    def lookup(self, predicate: str,
               bound: Mapping[int, object]) -> Iterator[Row]:
        """Rows of ``predicate`` matching all (column → value) selections.

        Uses (and lazily builds) the index of the first bound column;
        remaining selections are filtered.
        """
        relation = self._relations.get(predicate)
        if not relation:
            return iter(())
        if not bound:
            return iter(relation)
        column = min(bound)
        index = self._index_for(predicate, column)
        candidates = index.get(bound[column], [])
        others = [(col, value) for col, value in bound.items()
                  if col != column]
        if not others:
            return iter(candidates)
        return (
            row for row in candidates
            if all(col < len(row) and row[col] == value
                   for col, value in others)
        )

    def _index_for(self, predicate: str,
                   column: int) -> dict[object, list[Row]]:
        key = (predicate, column)
        if key not in self._indexes:
            index: dict[object, list[Row]] = defaultdict(list)
            for row in self._relations.get(predicate, ()):
                if column < len(row):
                    index[row[column]].append(row)
            self._indexes[key] = dict(index)
        return self._indexes[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(
            f"{pred}:{len(rows)}" for pred, rows in self._relations.items())
        return f"FactDatabase({sizes})"
