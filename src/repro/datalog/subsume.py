"""θ-subsumption between denials.

For denials (headless clauses) the useful direction is: ``general``
subsumes ``specific`` iff there is a substitution θ over the variables
of ``general`` such that every body literal of ``general``·θ is implied
by some body literal of ``specific``.  Then any binding satisfying the
body of ``specific`` also satisfies the body of ``general`` — so if
``general`` is known to hold (its body is unsatisfiable), ``specific``
is redundant.  This is the engine behind the redundancy-elimination
steps of the ``Optimize`` transformation (section 5), including the use
of the freshness hypotheses Δ: ``← sub(is,_,_,_)`` subsumes any denial
whose body contains a ``sub`` atom with id ``is``.

θ may only bind the variables of ``general`` (renamed apart first);
variables of ``specific`` act as constants.
"""

from __future__ import annotations

from typing import Iterator

from repro.datalog.atoms import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Literal,
    Negation,
    apply_comparison_op,
)
from repro.datalog.denial import Denial
from repro.datalog.subst import Substitution
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import match_atoms, match_terms


def subsumes(general: Denial, specific: Denial) -> bool:
    """True if ``general`` θ-subsumes ``specific``."""
    return subsuming_substitution(general, specific) is not None


def subsuming_substitution(general: Denial,
                           specific: Denial) -> Substitution | None:
    """The witnessing substitution of :func:`subsumes`, or ``None``.

    The substitution is over the variables of a renamed-apart copy of
    ``general``, so it is mainly useful as a yes/no witness.
    """
    renamed = general.rename_apart()
    bindable = renamed.variables()
    return _match_body(list(renamed.body), list(specific.body),
                       Substitution(), bindable)


def _match_body(pattern: list[Literal], target: list[Literal],
                substitution: Substitution,
                bindable: set[Variable]) -> Substitution | None:
    if not pattern:
        return substitution
    head, rest = pattern[0], pattern[1:]
    for candidate in target:
        for extended in _match_literal(head, candidate, substitution,
                                       bindable):
            result = _match_body(rest, target, extended, bindable)
            if result is not None:
                return result
    return None


def _match_literal(pattern: Literal, target: Literal,
                   substitution: Substitution,
                   bindable: set[Variable]) -> Iterator[Substitution]:
    """Yield extensions of ``substitution`` making ``target`` imply
    ``pattern``·θ."""
    if isinstance(pattern, Atom) and isinstance(target, Atom):
        result = match_atoms(pattern, target, substitution, bindable)
        if result is not None:
            yield result
        return
    if isinstance(pattern, Comparison) and isinstance(target, Comparison):
        yield from _match_comparison(pattern, target, substitution, bindable)
        return
    if isinstance(pattern, AggregateCondition) \
            and isinstance(target, AggregateCondition):
        yield from _match_aggregate(pattern, target, substitution, bindable)
        return
    if isinstance(pattern, Negation) and isinstance(target, Negation):
        # conservative: the two negated subqueries must be structurally
        # equal up to θ (a bijective literal matching); then they are
        # logically equivalent, so the implication holds
        if len(pattern.body) == len(target.body):
            yield from _match_literal_multiset(
                list(pattern.body), list(target.body), substitution,
                bindable)
        return


# target op → pattern ops it implies, when operands are identical
_OP_IMPLICATIONS = {
    "eq": {"eq", "le", "ge"},
    "ne": {"ne"},
    "lt": {"lt", "le", "ne"},
    "le": {"le"},
    "gt": {"gt", "ge", "ne"},
    "ge": {"ge"},
}


def _match_comparison(pattern: Comparison, target: Comparison,
                      substitution: Substitution,
                      bindable: set[Variable]) -> Iterator[Substitution]:
    # operand order is irrelevant once the operator is swapped with it
    candidates = [target, target.swapped()]
    for candidate in candidates:
        if pattern.op not in _OP_IMPLICATIONS[candidate.op]:
            continue
        partial = match_terms(pattern.left, candidate.left, substitution,
                              bindable)
        if partial is None:
            continue
        complete = match_terms(pattern.right, candidate.right, partial,
                               bindable)
        if complete is not None:
            yield complete


def _bound_implies(target_op: str, target_bound: object, pattern_op: str,
                   pattern_bound: object) -> bool:
    """``value target_op target_bound`` implies ``value pattern_op
    pattern_bound`` for every value — decided for numeric bounds."""
    if not isinstance(target_bound, (int, float)) \
            or not isinstance(pattern_bound, (int, float)):
        return False
    if target_op == "eq":
        return apply_comparison_op(pattern_op, target_bound, pattern_bound)
    if target_op in ("gt", "ge") and pattern_op in ("gt", "ge"):
        # value > t implies value > p iff t >= p; value >= t implies
        # value > p iff t > p
        if target_op == "ge" and pattern_op == "gt":
            return target_bound > pattern_bound
        return target_bound >= pattern_bound
    if target_op in ("lt", "le") and pattern_op in ("lt", "le"):
        if target_op == "le" and pattern_op == "lt":
            return target_bound < pattern_bound
        return target_bound <= pattern_bound
    return False


def _match_aggregate(pattern: AggregateCondition, target: AggregateCondition,
                     substitution: Substitution,
                     bindable: set[Variable]) -> Iterator[Substitution]:
    pattern_agg, target_agg = pattern.aggregate, target.aggregate
    if pattern_agg.func != target_agg.func \
            or pattern_agg.distinct != target_agg.distinct:
        return
    if len(pattern_agg.body) != len(target_agg.body) \
            or len(pattern_agg.group_by) != len(target_agg.group_by):
        return
    for base in _match_aggregate_structure(pattern_agg, target_agg,
                                           substitution, bindable):
        bound = base.apply_term(pattern.bound)
        if pattern.op == target.op:
            final = match_terms(bound, target.bound, base, bindable)
            if final is not None:
                yield final
                continue
        if isinstance(bound, Constant) and isinstance(target.bound, Constant) \
                and _bound_implies(target.op, target.bound.value, pattern.op,
                                   bound.value):
            yield base


def _match_aggregate_structure(
        pattern_agg: Aggregate, target_agg: Aggregate,
        substitution: Substitution,
        bindable: set[Variable]) -> Iterator[Substitution]:
    """Match term, group-by and body of two aggregates (backtracking)."""
    seeds = [substitution]
    if pattern_agg.term is not None or target_agg.term is not None:
        if pattern_agg.term is None or target_agg.term is None:
            return
        seeds = [
            partial for partial in (
                match_terms(pattern_agg.term, target_agg.term, substitution,
                            bindable),)
            if partial is not None
        ]
    for seed in seeds:
        current: Substitution | None = seed
        for pattern_term, target_term in zip(pattern_agg.group_by,
                                             target_agg.group_by):
            assert current is not None
            current = match_terms(pattern_term, target_term, current,
                                  bindable)
            if current is None:
                break
        if current is None:
            continue
        yield from _match_atom_multiset(list(pattern_agg.body),
                                        list(target_agg.body), current,
                                        bindable)


def _match_literal_multiset(pattern_literals: list,
                            target_literals: list,
                            substitution: Substitution,
                            bindable: set[Variable]) -> Iterator[Substitution]:
    """Injective matching of mixed atom/comparison multisets."""
    if not pattern_literals:
        yield substitution
        return
    head, rest = pattern_literals[0], pattern_literals[1:]
    for index, candidate in enumerate(target_literals):
        if isinstance(head, Atom) and isinstance(candidate, Atom):
            partial = match_atoms(head, candidate, substitution, bindable)
            matches = [] if partial is None else [partial]
        elif isinstance(head, Comparison) \
                and isinstance(candidate, Comparison):
            # inside a negation the match must preserve meaning exactly,
            # so only identical operators (modulo swap) are accepted
            matches = [
                extended
                for extended in _match_comparison(head, candidate,
                                                  substitution, bindable)
            ] if head.op in (candidate.op, candidate.swapped().op) else []
        else:
            matches = []
        remaining = target_literals[:index] + target_literals[index + 1:]
        for partial in matches:
            yield from _match_literal_multiset(rest, remaining, partial,
                                               bindable)


def _match_atom_multiset(pattern_atoms: list[Atom], target_atoms: list[Atom],
                         substitution: Substitution,
                         bindable: set[Variable]) -> Iterator[Substitution]:
    """Injective matching of aggregate bodies (same length, any order)."""
    if not pattern_atoms:
        yield substitution
        return
    head, rest = pattern_atoms[0], pattern_atoms[1:]
    for index, candidate in enumerate(target_atoms):
        partial = match_atoms(head, candidate, substitution, bindable)
        if partial is None:
            continue
        remaining = target_atoms[:index] + target_atoms[index + 1:]
        yield from _match_atom_multiset(rest, remaining, partial, bindable)
