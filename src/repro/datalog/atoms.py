"""Literals of denial bodies: database atoms, comparisons, aggregates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.datalog.terms import (
    Arithmetic,
    Constant,
    Parameter,
    Term,
    Variable,
    term_parameters,
    term_variables,
)


@dataclass(frozen=True, slots=True)
class Atom:
    """A database atom ``predicate(arg1, ..., argN)``."""

    predicate: str
    args: tuple[Term, ...]

    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for arg in self.args:
            result |= term_variables(arg)
        return result

    def parameters(self) -> set[Parameter]:
        result: set[Parameter] = set()
        for arg in self.args:
            result |= term_parameters(arg)
        return result

    def is_ground(self) -> bool:
        return not self.variables()

    def __str__(self) -> str:
        inner = ",".join(str(arg) for arg in self.args)
        return f"{self.predicate}({inner})"


_COMPARISON_SYMBOLS = {
    "eq": "=",
    "ne": "≠",
    "lt": "<",
    "le": "≤",
    "gt": ">",
    "ge": "≥",
}

_NEGATED_OP = {
    "eq": "ne",
    "ne": "eq",
    "lt": "ge",
    "ge": "lt",
    "gt": "le",
    "le": "gt",
}

_SWAPPED_OP = {
    "eq": "eq",
    "ne": "ne",
    "lt": "gt",
    "gt": "lt",
    "le": "ge",
    "ge": "le",
}

COMPARISON_OPS = tuple(_COMPARISON_SYMBOLS)


@dataclass(frozen=True, slots=True)
class Comparison:
    """A built-in comparison literal ``left op right``."""

    op: str  # one of COMPARISON_OPS
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_SYMBOLS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> set[Variable]:
        return term_variables(self.left) | term_variables(self.right)

    def parameters(self) -> set[Parameter]:
        return term_parameters(self.left) | term_parameters(self.right)

    def swapped(self) -> "Comparison":
        """The same condition with the operands exchanged."""
        return Comparison(_SWAPPED_OP[self.op], self.right, self.left)

    def is_symmetric(self) -> bool:
        return self.op in ("eq", "ne")

    def __str__(self) -> str:
        return f"{self.left} {_COMPARISON_SYMBOLS[self.op]} {self.right}"


def negate_comparison(comparison: Comparison) -> Comparison:
    """The complementary condition (``=`` ↔ ``≠``, ``<`` ↔ ``≥``, ...)."""
    return Comparison(_NEGATED_OP[comparison.op], comparison.left,
                      comparison.right)


_AGG_NAMES = {"cnt": "Cnt", "sum": "Sum", "max": "Max", "min": "Min",
              "avg": "Avg"}


@dataclass(frozen=True, slots=True)
class Aggregate:
    """An aggregate expression over a conjunctive body.

    ``Cnt_D(sub(_,_,Ir,_))`` from example 7 is
    ``Aggregate("cnt", distinct=True, term=None, group_by=(),
    body=(sub(...),))`` — a row count; the group is pinned by the
    variable ``Ir`` shared with the rest of the denial.

    ``Cnt_D{[R]; //track[rev/name→R]}`` from example 2 counts *distinct
    values of a term* (the selected track's node id) per group-by
    binding of ``R``: ``term`` is the counted variable and ``group_by``
    lists the grouping variables.
    """

    func: str  # "cnt", "sum", "max", "min", "avg"
    distinct: bool
    term: Term | None  # None only for func == "cnt" (row count)
    group_by: tuple[Term, ...]
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if self.func not in _AGG_NAMES:
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.term is None and self.func != "cnt":
            raise ValueError(f"{self.func} requires an aggregated term")

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for atom in self.body:
            result |= atom.variables()
        if self.term is not None:
            result |= term_variables(self.term)
        for term in self.group_by:
            result |= term_variables(term)
        return result

    def local_variables(self) -> set[Variable]:
        """Variables existentially quantified inside the aggregate.

        These are the body variables that are neither grouped on nor
        visible outside; they can be renamed freely.
        """
        exported: set[Variable] = set()
        for term in self.group_by:
            exported |= term_variables(term)
        return self.variables() - exported

    def parameters(self) -> set[Parameter]:
        result: set[Parameter] = set()
        for atom in self.body:
            result |= atom.parameters()
        if self.term is not None:
            result |= term_parameters(self.term)
        for term in self.group_by:
            result |= term_parameters(term)
        return result

    def __str__(self) -> str:
        name = _AGG_NAMES[self.func] + ("D" if self.distinct else "")
        body = " ∧ ".join(str(atom) for atom in self.body)
        if not self.group_by and self.term is None:
            return f"{name}({body})"
        groups = ",".join(str(term) for term in self.group_by)
        term = "" if self.term is None else f"{self.term} "
        return f"{name}{{{term}[{groups}]; {body}}}"


@dataclass(frozen=True, slots=True)
class AggregateCondition:
    """An aggregate compared against a bound, e.g. ``Cnt_D(...) > 4``."""

    aggregate: Aggregate
    op: str  # one of COMPARISON_OPS
    bound: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_SYMBOLS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> set[Variable]:
        return self.aggregate.variables() | term_variables(self.bound)

    def parameters(self) -> set[Parameter]:
        return self.aggregate.parameters() | term_parameters(self.bound)

    def __str__(self) -> str:
        symbol = _COMPARISON_SYMBOLS[self.op]
        return f"{self.aggregate} {symbol} {self.bound}"


@dataclass(frozen=True, slots=True)
class Negation:
    """A negated existential subquery ``¬∃ x̄ (A1 ∧ ... ∧ C1 ∧ ...)``.

    ``body`` is a conjunction of database atoms and comparisons; the
    variables occurring *only* inside the body are existentially
    quantified under the negation, so
    ``← sub(Is,_,_,T) ∧ ¬(pub(_,_,_,T))`` states the referential
    constraint "every submission's title matches some publication" —
    the constraint class (keys / foreign keys) the paper's related work
    singles out, expressible here thanks to [16]'s treatment of
    negation in the simplification framework.
    """

    body: tuple["Atom | Comparison", ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("a negation needs a non-empty body")
        for literal in self.body:
            if not isinstance(literal, (Atom, Comparison)):
                raise ValueError(
                    "negation bodies hold atoms and comparisons only, "
                    f"not {literal!r}")

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for literal in self.body:
            result |= literal.variables()
        return result

    def parameters(self) -> set[Parameter]:
        result: set[Parameter] = set()
        for literal in self.body:
            result |= literal.parameters()
        return result

    def atoms(self) -> tuple[Atom, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(lit for lit in self.body
                     if isinstance(lit, Comparison))

    def __str__(self) -> str:
        inner = " ∧ ".join(str(literal) for literal in self.body)
        return f"¬({inner})"


Literal = Union[Atom, Comparison, AggregateCondition, Negation]


def literal_variables(literal: Literal) -> set[Variable]:
    """Variables of any literal kind."""
    return literal.variables()


def literal_parameters(literal: Literal) -> set[Parameter]:
    """Parameters of any literal kind."""
    return literal.parameters()


def comparison_truth(comparison: Comparison) -> bool | None:
    """Truth value of a comparison decidable without a database.

    Returns ``True``/``False`` when the comparison is decided by its
    syntactic form, ``None`` when it depends on unknown values:

    * two equal constants / identical terms under ``=`` → ``True``;
    * two distinct constants under ``=`` → ``False``; and so on for the
      ordering operators on ground numeric/string operands;
    * identical non-constant terms (same variable or same parameter) are
      decided for every operator (``X = X`` is true, ``X < X`` false);
    * anything involving two different variables/parameters → ``None``.
    """
    left, right = comparison.left, comparison.right
    if isinstance(left, Constant) and isinstance(right, Constant):
        try:
            return _apply_op(comparison.op, left.value, right.value)
        except TypeError:
            return None
    if left == right and not isinstance(left, Arithmetic):
        return comparison.op in ("eq", "le", "ge")
    return None


def _apply_op(op: str, left: object, right: object) -> bool:
    if op == "eq":
        return left == right
    if op == "ne":
        return left != right
    if type(left) is bool or type(right) is bool:
        raise TypeError("booleans are not ordered")
    if isinstance(left, str) != isinstance(right, str):
        raise TypeError("cannot order values of different kinds")
    if op == "lt":
        return left < right  # type: ignore[operator]
    if op == "le":
        return left <= right  # type: ignore[operator]
    if op == "gt":
        return left > right  # type: ignore[operator]
    if op == "ge":
        return left >= right  # type: ignore[operator]
    raise ValueError(f"unknown comparison operator {op!r}")


def apply_comparison_op(op: str, left: object, right: object) -> bool:
    """Apply a comparison operator to two Python values.

    Mixed-kind orderings raise ``TypeError``; equality between mixed
    kinds is simply ``False``/``True`` by Python semantics.
    """
    return _apply_op(op, left, right)
