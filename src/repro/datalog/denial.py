"""Denials: headless clauses expressing integrity constraints.

A denial ``← L1 ∧ ... ∧ Ln`` holds in a state iff no variable binding
satisfies all body literals (definition in section 4.2).  Variables are
implicitly universally quantified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.atoms import (
    AggregateCondition,
    Atom,
    Comparison,
    Literal,
    Negation,
)
from repro.datalog.subst import Substitution
from repro.datalog.terms import Parameter, Variable, fresh_variable


@dataclass(frozen=True)
class Denial:
    """An integrity constraint in denial form."""

    body: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError(
                "a denial needs a non-empty body (an empty body would "
                "forbid every database state)")

    # -- inspection ---------------------------------------------------------

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for literal in self.body:
            result |= literal.variables()
        return result

    def parameters(self) -> set[Parameter]:
        result: set[Parameter] = set()
        for literal in self.body:
            result |= literal.parameters()
        return result

    def atoms(self) -> tuple[Atom, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Comparison))

    def aggregate_conditions(self) -> tuple[AggregateCondition, ...]:
        return tuple(lit for lit in self.body
                     if isinstance(lit, AggregateCondition))

    def negations(self) -> tuple[Negation, ...]:
        return tuple(lit for lit in self.body
                     if isinstance(lit, Negation))

    def predicates(self) -> set[str]:
        """Every database predicate mentioned, including inside aggregates."""
        result = {atom.predicate for atom in self.atoms()}
        for condition in self.aggregate_conditions():
            result |= {atom.predicate for atom in condition.aggregate.body}
        for negation in self.negations():
            result |= {atom.predicate for atom in negation.atoms()}
        return result

    # -- transformation -------------------------------------------------------

    def substitute(self, substitution: Substitution) -> "Denial":
        return Denial(tuple(
            substitution.apply_literal(literal) for literal in self.body))

    def without(self, literal: Literal) -> "Denial":
        """Drop the first occurrence of ``literal`` from the body."""
        body = list(self.body)
        body.remove(literal)
        return Denial(tuple(body))

    def with_literals(self, literals: tuple[Literal, ...]) -> "Denial":
        return Denial(self.body + tuple(literals))

    def deduplicated(self) -> "Denial":
        """Remove duplicate literals, keeping first occurrences."""
        seen: list[Literal] = []
        for literal in self.body:
            if literal not in seen:
                seen.append(literal)
        return Denial(tuple(seen))

    def rename_apart(self, taken: set[Variable] | None = None) -> "Denial":
        """Rename variables to globally fresh ones (for safe combination).

        ``taken`` adds extra variables that must be avoided; globally
        fresh names avoid collisions by construction.
        """
        mapping = {
            var: fresh_variable(var.name.split("#")[0])
            for var in sorted(self.variables(), key=lambda v: v.name)
        }
        return self.substitute(Substitution(mapping))

    # -- comparison ---------------------------------------------------------------

    def equivalent_to(self, other: "Denial") -> bool:
        """Mutual θ-subsumption (logical equivalence for our purposes)."""
        from repro.datalog.subsume import subsumes
        return subsumes(self, other) and subsumes(other, self)

    def __str__(self) -> str:
        renamed = self.substitute(self._display_substitution())
        return "← " + " ∧ ".join(str(literal) for literal in renamed.body)

    def _display_substitution(self) -> Substitution:
        """Rename anonymous variables that occur more than once.

        A shared anonymous variable is a real join; printing it as ``_``
        would hide that, so repeated ones get visible names ``X1``,
        ``X2``, ... in first-occurrence order.
        """
        from repro.datalog.atoms import Aggregate
        from repro.datalog.terms import Arithmetic, Term, is_anonymous

        counts: dict[Variable, int] = {}
        order: list[Variable] = []

        def walk_term(term: Term) -> None:
            if isinstance(term, Variable):
                if term not in counts:
                    order.append(term)
                counts[term] = counts.get(term, 0) + 1
            elif isinstance(term, Arithmetic):
                walk_term(term.left)
                walk_term(term.right)

        def walk_literal(literal: Literal) -> None:
            if isinstance(literal, Atom):
                for arg in literal.args:
                    walk_term(arg)
            elif isinstance(literal, Comparison):
                walk_term(literal.left)
                walk_term(literal.right)
            elif isinstance(literal, Negation):
                for inner in literal.body:
                    walk_literal(inner)
            else:
                assert isinstance(literal, AggregateCondition)
                aggregate: Aggregate = literal.aggregate
                if aggregate.term is not None:
                    walk_term(aggregate.term)
                for term in aggregate.group_by:
                    walk_term(term)
                for atom in aggregate.body:
                    for arg in atom.args:
                        walk_term(arg)
                walk_term(literal.bound)

        for literal in self.body:
            walk_literal(literal)
        taken = {variable.name for variable in counts}
        mapping: dict[Variable, Variable] = {}
        counter = 1
        for variable in order:
            if is_anonymous(variable) and counts[variable] > 1:
                while f"X{counter}" in taken:
                    counter += 1
                mapping[variable] = Variable(f"X{counter}")
                counter += 1
            elif not is_anonymous(variable) and "#" in variable.name:
                base = variable.name.split("#")[0]
                name = base
                suffix = 1
                while name in taken:
                    name = f"{base}{suffix}"
                    suffix += 1
                taken.add(name)
                mapping[variable] = Variable(name)
        return Substitution(mapping)
