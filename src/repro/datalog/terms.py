"""Terms of the Datalog dialect used for XML constraints.

Three leaf term kinds exist (section 5 of the paper):

* :class:`Constant` — a ground value (string or number);
* :class:`Variable` — implicitly universally quantified in denials; the
  paper writes them capitalized.  Variables whose name starts with an
  underscore render as ``_`` (anonymous variables);
* :class:`Parameter` — a *placeholder for a constant* used in update
  patterns (the paper writes them in boldface: **a**, **b**, ...).  A
  parameter behaves like an unknown constant during simplification: two
  distinct parameters are neither known-equal nor known-different.

:class:`Arithmetic` is a compound term used for aggregate bounds that
must be adjusted by a parameter-dependent amount (e.g. ``c - 1``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Constant:
    """A ground value: a Python ``str``, ``int``, ``float`` or ``None``.

    ``None`` is the SQL-ish null used for absent optional columns in
    the relational mapping (optional inlined children, optional
    attributes)."""

    value: str | int | float | None

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        if self.value is None:
            return "null"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable."""

    name: str

    def __str__(self) -> str:
        return "_" if is_anonymous(self) else self.name


@dataclass(frozen=True, slots=True)
class Parameter:
    """A placeholder for a constant bound at update time (bold in the paper)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Arithmetic:
    """A compound arithmetic term, e.g. ``Arithmetic('-', bound, 1)``."""

    op: str  # "+", "-"
    left: "Term"
    right: "Term"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Term = Union[Constant, Variable, Parameter, Arithmetic]

ANONYMOUS_PREFIX = "_"
"""Variables named with this prefix print as ``_`` (don't-care)."""

_fresh_counter = itertools.count(1)


def fresh_variable(hint: str = "V") -> Variable:
    """Return a variable with a globally unused name.

    The name embeds ``hint`` for readable output, e.g. ``fresh_variable
    ("_")`` yields anonymous-looking variables ``_1``, ``_2``, ...
    """
    return Variable(f"{hint}#{next(_fresh_counter)}")


def is_anonymous(variable: Variable) -> bool:
    """True for variables that came from ``_`` in the source syntax."""
    return variable.name.startswith(ANONYMOUS_PREFIX)


def term_variables(term: Term) -> set[Variable]:
    """The set of variables occurring in ``term``."""
    if isinstance(term, Variable):
        return {term}
    if isinstance(term, Arithmetic):
        return term_variables(term.left) | term_variables(term.right)
    return set()


def term_parameters(term: Term) -> set[Parameter]:
    """The set of parameters occurring in ``term``."""
    if isinstance(term, Parameter):
        return {term}
    if isinstance(term, Arithmetic):
        return term_parameters(term.left) | term_parameters(term.right)
    return set()


def evaluate_arithmetic(term: Term) -> Term:
    """Fold ground arithmetic into a constant where possible."""
    if not isinstance(term, Arithmetic):
        return term
    left = evaluate_arithmetic(term.left)
    right = evaluate_arithmetic(term.right)
    if (isinstance(left, Constant) and isinstance(right, Constant)
            and isinstance(left.value, (int, float))
            and isinstance(right.value, (int, float))):
        if term.op == "+":
            return Constant(left.value + right.value)
        if term.op == "-":
            return Constant(left.value - right.value)
    return Arithmetic(term.op, left, right)
