"""Substitutions: finite mappings from variables to terms."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

from repro.datalog.terms import (
    Arithmetic,
    Parameter,
    Term,
    Variable,
    evaluate_arithmetic,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.atoms import (
        Aggregate,
        AggregateCondition,
        Atom,
        Comparison,
        Literal,
    )


class Substitution:
    """An immutable variable→term mapping.

    Application is *not* recursive: bindings are expected to be in solved
    form (no bound variable occurs in any image), which :meth:`bind`
    maintains by composing on the fly.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Variable, Term] | None = None) -> None:
        self._mapping: dict[Variable, Term] = dict(mapping or {})

    # -- mapping protocol ----------------------------------------------------

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._mapping

    def __getitem__(self, variable: Variable) -> Term:
        return self._mapping[variable]

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def get(self, variable: Variable, default: Term | None = None) -> Term | None:
        return self._mapping.get(variable, default)

    def items(self) -> Iterator[tuple[Variable, Term]]:
        return iter(self._mapping.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._mapping == other._mapping

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{var}↦{term}" for var, term in sorted(
                self._mapping.items(), key=lambda pair: pair[0].name))
        return "{" + inner + "}"

    # -- construction ----------------------------------------------------------

    def bind(self, variable: Variable, term: Term) -> "Substitution":
        """Return a new substitution with ``variable ↦ term`` added.

        Existing images are updated so the result stays in solved form.
        """
        term = self.apply_term(term)
        if term == variable:
            return self
        single = Substitution({variable: term})
        updated = {
            var: single.apply_term(image)
            for var, image in self._mapping.items()
        }
        updated[variable] = term
        return Substitution(updated)

    def compose(self, other: "Substitution") -> "Substitution":
        """``(self ∘ other)``: apply ``self`` first, then ``other``."""
        result = {
            var: other.apply_term(image)
            for var, image in self._mapping.items()
        }
        for var, image in other.items():
            result.setdefault(var, image)
        return Substitution(result)

    def restricted(self, variables: set[Variable]) -> "Substitution":
        """Keep only the bindings of the given variables."""
        return Substitution({
            var: image for var, image in self._mapping.items()
            if var in variables
        })

    # -- application -------------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        if isinstance(term, Arithmetic):
            return evaluate_arithmetic(Arithmetic(
                term.op, self.apply_term(term.left),
                self.apply_term(term.right)))
        return term

    def apply_atom(self, atom: "Atom") -> "Atom":
        from repro.datalog.atoms import Atom
        return Atom(atom.predicate,
                    tuple(self.apply_term(arg) for arg in atom.args))

    def apply_literal(self, literal: "Literal") -> "Literal":
        from repro.datalog.atoms import (
            Aggregate,
            AggregateCondition,
            Atom,
            Comparison,
            Negation,
        )
        if isinstance(literal, Atom):
            return self.apply_atom(literal)
        if isinstance(literal, Comparison):
            return Comparison(literal.op, self.apply_term(literal.left),
                              self.apply_term(literal.right))
        if isinstance(literal, Negation):
            return Negation(tuple(
                self.apply_literal(inner)  # type: ignore[misc]
                for inner in literal.body))
        if isinstance(literal, AggregateCondition):
            aggregate = literal.aggregate
            new_aggregate = Aggregate(
                aggregate.func,
                aggregate.distinct,
                None if aggregate.term is None
                else self.apply_term(aggregate.term),
                tuple(self.apply_term(term) for term in aggregate.group_by),
                tuple(self.apply_atom(atom) for atom in aggregate.body),
            )
            return AggregateCondition(new_aggregate, literal.op,
                                      self.apply_term(literal.bound))
        raise TypeError(f"unknown literal kind: {literal!r}")

    # -- parameters --------------------------------------------------------------

    @staticmethod
    def for_parameters(values: Mapping[Parameter, Term]) -> "ParameterBinding":
        """Build a parameter-instantiation map (see ParameterBinding)."""
        return ParameterBinding(values)


class ParameterBinding:
    """A parameter→term mapping applied at update time.

    Parameters are constants-to-be, so instantiating them is a separate
    operation from variable substitution.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Parameter, Term]) -> None:
        self._mapping = dict(mapping)

    def apply_term(self, term: Term) -> Term:
        if isinstance(term, Parameter):
            return self._mapping.get(term, term)
        if isinstance(term, Arithmetic):
            return evaluate_arithmetic(Arithmetic(
                term.op, self.apply_term(term.left),
                self.apply_term(term.right)))
        return term

    def apply_literal(self, literal: "Literal") -> "Literal":
        from repro.datalog.atoms import (
            Aggregate,
            AggregateCondition,
            Atom,
            Comparison,
            Negation,
        )
        if isinstance(literal, Atom):
            return Atom(literal.predicate,
                        tuple(self.apply_term(arg) for arg in literal.args))
        if isinstance(literal, Comparison):
            return Comparison(literal.op, self.apply_term(literal.left),
                              self.apply_term(literal.right))
        if isinstance(literal, Negation):
            return Negation(tuple(
                self.apply_literal(inner)  # type: ignore[misc]
                for inner in literal.body))
        if isinstance(literal, AggregateCondition):
            aggregate = literal.aggregate
            new_aggregate = Aggregate(
                aggregate.func,
                aggregate.distinct,
                None if aggregate.term is None
                else self.apply_term(aggregate.term),
                tuple(self.apply_term(term) for term in aggregate.group_by),
                tuple(
                    Atom(atom.predicate,
                         tuple(self.apply_term(arg) for arg in atom.args))
                    for atom in aggregate.body),
            )
            return AggregateCondition(new_aggregate, literal.op,
                                      self.apply_term(literal.bound))
        raise TypeError(f"unknown literal kind: {literal!r}")
