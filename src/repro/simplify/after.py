"""The ``After`` transformation (definition 2), with aggregate support.

``After^U(Γ)`` rewrites denials that refer to the updated state into
denials over the present state:

* every database atom ``p(t̄)`` whose predicate receives additions
  ``p(ā₁) ... p(āₙ)`` is replaced by the disjunction
  ``p(t̄) ∨ t̄=ā₁ ∨ ... ∨ t̄=āₙ``; the result is put back in denial
  (conjunctive) form, producing one output denial per combination;
* every aggregate condition whose body mentions an updated predicate is
  case-split over the sets of additions that can contribute new
  bindings to the aggregated group.  For each consistent contribution
  set the group variables are instantiated, the *residual* body atoms
  (which the contribution requires to hold) are hoisted into the denial
  body — where they are themselves subject to atom expansion — and the
  comparison bound is lowered by the contribution (example 7's
  ``Cnt_D(...) > 4`` becomes ``Cnt_D(...) > 3``).

The aggregate rule is exact for monotone comparisons (``>``, ``≥``)
with distinct counts over fresh node identifiers, plain counts and sums
with empty residuals; anything else raises
:class:`repro.errors.SimplificationError` so the caller can fall back
to brute-force checking.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.datalog.atoms import (
    AggregateCondition,
    Atom,
    Comparison,
    Literal,
    Negation,
)
from repro.datalog.denial import Denial
from repro.datalog.subst import Substitution
from repro.datalog.terms import (
    Arithmetic,
    Constant,
    Parameter,
    Term,
    Variable,
    evaluate_arithmetic,
    fresh_variable,
)
from repro.datalog.unify import unify_atoms
from repro.errors import SimplificationError
from repro.simplify.update import UpdatePattern


def after(denials: Iterable[Denial], update: UpdatePattern) -> list[Denial]:
    """``After^U`` over a set of denials (definition 2)."""
    result: list[Denial] = []
    for denial in denials:
        for with_aggregates in _aggregate_cases(denial, update):
            result.extend(_expand_atoms(with_aggregates, update))
    return result


# ---------------------------------------------------------------------------
# Regular atom expansion
# ---------------------------------------------------------------------------

def _expand_atoms(denial: Denial, update: UpdatePattern) -> list[Denial]:
    options_per_literal: list[list[tuple[Literal, ...]]] = []
    for literal in denial.body:
        if isinstance(literal, Atom) and update.additions_for(
                literal.predicate):
            options: list[tuple[Literal, ...]] = [(literal,)]
            for addition in update.additions_for(literal.predicate):
                if len(addition.args) != literal.arity():
                    raise SimplificationError(
                        f"addition {addition} does not match the arity of "
                        f"{literal}")
                equalities = tuple(
                    Comparison("eq", arg, value)
                    for arg, value in zip(literal.args, addition.args))
                options.append(equalities)
            options_per_literal.append(options)
        elif isinstance(literal, Negation) and (
                {atom.predicate for atom in literal.atoms()}
                & update.predicates()):
            options_per_literal.append([_expand_negation(literal, update)])
        else:
            options_per_literal.append([(literal,)])
    bodies: list[tuple[Literal, ...]] = [()]
    for options in options_per_literal:
        bodies = [
            body + choice
            for body in bodies
            for choice in options
        ]
    return [Denial(body) for body in bodies]


def _expand_negation(negation: Negation,
                     update: UpdatePattern) -> tuple[Literal, ...]:
    """After for a negated subquery.

    ``¬∃x̄ B`` in the new state unfolds through the atom expansion:
    ``∃x̄ ⋁ combos`` distributes over ∃, so the negation becomes the
    *conjunction* ``⋀ ¬∃x̄ combo`` — one negation literal per choice
    combination of the inner atoms.
    """
    inner_options: list[list[tuple]] = []
    for inner in negation.body:
        if isinstance(inner, Atom) and update.additions_for(
                inner.predicate):
            choices: list[tuple] = [(inner,)]
            for addition in update.additions_for(inner.predicate):
                if len(addition.args) != inner.arity():
                    raise SimplificationError(
                        f"addition {addition} does not match the arity "
                        f"of {inner}")
                choices.append(tuple(
                    Comparison("eq", arg, value)
                    for arg, value in zip(inner.args, addition.args)))
            inner_options.append(choices)
        else:
            inner_options.append([(inner,)])
    bodies: list[tuple] = [()]
    for choices in inner_options:
        bodies = [body + choice for body in bodies for choice in choices]
    return tuple(Negation(body) for body in bodies)


# ---------------------------------------------------------------------------
# Aggregate case analysis
# ---------------------------------------------------------------------------

def _aggregate_cases(denial: Denial, update: UpdatePattern) -> list[Denial]:
    indices = [
        index for index, literal in enumerate(denial.body)
        if isinstance(literal, AggregateCondition)
        and {atom.predicate for atom in literal.aggregate.body}
        & update.predicates()
    ]
    return _split_aggregates(denial, indices, update)


def _split_aggregates(denial: Denial, indices: list[int],
                      update: UpdatePattern) -> list[Denial]:
    if not indices:
        return [denial]
    index, rest = indices[0], indices[1:]
    results: list[Denial] = []
    for case in _cases_for_aggregate(denial, index, update):
        results.extend(_split_aggregates(case, rest, update))
    return results


def _cases_for_aggregate(denial: Denial, index: int,
                         update: UpdatePattern) -> list[Denial]:
    condition = denial.body[index]
    assert isinstance(condition, AggregateCondition)
    aggregate = condition.aggregate
    if condition.op not in ("gt", "ge"):
        raise SimplificationError(
            f"cannot simplify aggregate condition {condition}: only "
            "monotone comparisons (>, ≥) are supported when the aggregate "
            "body is touched by the update")
    if aggregate.func not in ("cnt", "sum"):
        raise SimplificationError(
            f"cannot simplify {aggregate.func} aggregates touched by an "
            "update")
    if aggregate.func == "sum" and aggregate.distinct:
        raise SimplificationError(
            "cannot simplify distinct sums touched by an update")
    for predicate in update.predicates():
        same = [atom for atom in aggregate.body
                if atom.predicate == predicate]
        if len(same) > 1:
            raise SimplificationError(
                f"aggregate body self-joins updated predicate {predicate!r}")

    exported = _exported_variables(denial, index)
    locals_ = aggregate.variables() - exported

    matchings: list[tuple[int, Atom]] = []
    for atom_index, atom in enumerate(aggregate.body):
        for addition in update.additions_for(atom.predicate):
            matchings.append((atom_index, addition))

    cases: list[Denial] = [denial]  # the no-contribution case
    for size in range(1, len(matchings) + 1):
        for subset in combinations(matchings, size):
            case = _contribution_case(denial, index, condition, subset,
                                      locals_, exported, update)
            if case is not None:
                cases.append(case)
    return cases


def _exported_variables(denial: Denial, index: int) -> set[Variable]:
    condition = denial.body[index]
    assert isinstance(condition, AggregateCondition)
    rest_vars: set[Variable] = set()
    for other_index, literal in enumerate(denial.body):
        if other_index != index:
            rest_vars |= literal.variables()
    group_vars: set[Variable] = set()
    for term in condition.aggregate.group_by:
        group_vars |= _term_vars(term)
    return (condition.aggregate.variables() & rest_vars) | group_vars


def _term_vars(term: Term) -> set[Variable]:
    if isinstance(term, Variable):
        return {term}
    if isinstance(term, Arithmetic):
        return _term_vars(term.left) | _term_vars(term.right)
    return set()


def _contribution_case(denial: Denial, index: int,
                       condition: AggregateCondition,
                       subset: Sequence[tuple[int, Atom]],
                       locals_: set[Variable], exported: set[Variable],
                       update: UpdatePattern) -> Denial | None:
    """Build the After-denial for one contribution set, or ``None`` when
    the contribution set is inconsistent."""
    aggregate = condition.aggregate
    substitution = Substitution()
    residuals: list[Atom] = []
    contributions: list[Term] = []

    for atom_index, addition in subset:
        renaming = Substitution({
            local: fresh_variable(local.name.split("#")[0])
            for local in sorted(locals_, key=lambda v: v.name)
        })
        matched_atom = renaming.apply_atom(aggregate.body[atom_index])
        unified = unify_atoms(matched_atom, addition, substitution)
        if unified is None:
            return None
        substitution = unified
        for other_index, other_atom in enumerate(aggregate.body):
            if other_index != atom_index:
                residuals.append(renaming.apply_atom(other_atom))
        contributions.append(
            _contribution_value(aggregate, renaming, addition))

    # a contribution needs its residual atoms to hold in the new state;
    # a residual pinned to a fresh identifier can only be satisfied by
    # an added tuple carrying that identifier — if none does, this
    # contribution set is impossible and the case collapses into the
    # no-contribution one
    final_residuals = [substitution.apply_atom(residual)
                       for residual in residuals]
    for residual in final_residuals:
        for position, arg in enumerate(residual.args):
            if not (isinstance(arg, Parameter)
                    and arg in update.fresh_parameters):
                continue
            if not any(addition.predicate == residual.predicate
                       and position < len(addition.args)
                       and addition.args[position] == arg
                       for addition in update.additions):
                return None

    if aggregate.func == "cnt":
        if aggregate.distinct:
            # distinct counts only grow when the counted values are new
            for value in contributions:
                resolved = substitution.apply_term(value)
                _require_fresh(resolved, update, condition)
        if not aggregate.distinct and residuals:
            raise SimplificationError(
                f"cannot simplify {condition}: a plain count with residual "
                "body atoms has a data-dependent contribution")
        delta: Term = Constant(len(subset))
    else:  # sum
        if residuals:
            raise SimplificationError(
                f"cannot simplify {condition}: a sum with residual body "
                "atoms has a data-dependent contribution")
        delta = Constant(0)
        for value in contributions:
            resolved = substitution.apply_term(value)
            if not isinstance(resolved, (Constant, Parameter)):
                raise SimplificationError(
                    f"cannot simplify {condition}: the summed value "
                    f"{resolved} is not determined by the update pattern")
            delta = Arithmetic("+", delta, resolved)

    outward = substitution.restricted(exported)
    new_bound = evaluate_arithmetic(
        Arithmetic("-", outward.apply_term(condition.bound),
                   substitution.apply_term(delta)))
    new_condition = AggregateCondition(
        outward.apply_literal(
            AggregateCondition(aggregate, condition.op,
                               condition.bound)).aggregate,
        condition.op, new_bound)

    body: list[Literal] = []
    for literal_index, literal in enumerate(denial.body):
        if literal_index == index:
            body.append(new_condition)
        else:
            body.append(outward.apply_literal(literal))
    for residual in residuals:
        body.append(substitution.apply_atom(residual))
    return Denial(tuple(body))


def _contribution_value(aggregate, renaming: Substitution,
                        addition: Atom) -> Term:
    if aggregate.term is not None:
        return renaming.apply_term(aggregate.term)
    # row-distinct count: the row's identity is carried by its id column
    return addition.args[0] if addition.args else Constant(1)


def _require_fresh(value: Term, update: UpdatePattern,
                   condition: AggregateCondition) -> None:
    if isinstance(value, Parameter) and value in update.fresh_parameters:
        return
    raise SimplificationError(
        f"cannot simplify {condition}: the counted value {value} of an "
        "added tuple is not a fresh node identifier, so distinctness "
        "cannot be guaranteed")
