"""Simplification of integrity constraints (section 5).

Implements the framework of Christiansen & Martinenghi adopted by the
paper:

* :func:`after` — the syntactic transformation ``After^U`` of
  definition 2: a set of denials referring to the updated state is
  rewritten into one that holds in the *present* state iff the original
  holds after the update;
* :func:`optimize` — the ``Optimize_Δ`` transformation: removes denials
  provable from trusted hypotheses (the original constraints Γ plus the
  freshness hypotheses Δ of update patterns), eliminates equalities,
  folds trivial conditions and discards subsumed denials;
* :func:`simp` — ``Simp^U_Δ(Γ) = Optimize_{Γ∪Δ}(After^U(Γ))``
  (definition 3);
* :class:`UpdatePattern` — a parametric insertion pattern (ground atoms
  over constants and parameters);
* :func:`freshness_hypotheses` — derives the Δ of section 5.1 from an
  update pattern (fresh node ids occur nowhere in the present state).

Aggregates are handled for the monotone comparisons (``>``, ``≥``) that
cover the paper's examples; patterns outside the supported fragment
raise :class:`repro.errors.SimplificationError`, and callers fall back
to brute-force checking (footnote 4 of the paper).
"""

from repro.simplify.update import UpdatePattern, freshness_hypotheses
from repro.simplify.after import after
from repro.simplify.optimize import normalize_denial, optimize
from repro.simplify.simp import simp

__all__ = [
    "UpdatePattern",
    "freshness_hypotheses",
    "after",
    "optimize",
    "normalize_denial",
    "simp",
]
