"""Update patterns: parametric tuple insertions (section 5).

An update transaction is a set of ground atoms to be added; parameters
(boldface constants) make a *pattern* standing for the class of concrete
transactions obtained by instantiating them.  Example 6's pattern for
"insert a single-author submission under some reviewer" is::

    U = { sub(is, ps, ir, t), auts(ia, pa, is, n) }

with ``is``/``ia`` fresh node identifiers, ``ir`` the identifier of an
existing ``rev`` node, ``ps``/``pa`` positions and ``t``/``n`` text
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.atoms import Atom
from repro.datalog.denial import Denial
from repro.datalog.terms import Constant, Parameter, Term, fresh_variable
from repro.errors import SimplificationError
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class UpdatePattern:
    """A parametric insertion: the atoms added to the database.

    ``fresh_parameters`` are the parameters standing for *new* node
    identifiers — values guaranteed not to occur anywhere in the present
    state.  They justify the Δ hypotheses and the distinct-count
    reasoning on aggregates.
    """

    additions: tuple[Atom, ...]
    fresh_parameters: frozenset[Parameter] = field(default_factory=frozenset)
    name: str | None = None

    def __post_init__(self) -> None:
        for atom in self.additions:
            for arg in atom.args:
                if not isinstance(arg, (Constant, Parameter)):
                    raise SimplificationError(
                        f"update atoms must be ground over constants and "
                        f"parameters; found {arg} in {atom}")

    def parameters(self) -> set[Parameter]:
        result: set[Parameter] = set()
        for atom in self.additions:
            result |= atom.parameters()
        return result

    def additions_for(self, predicate: str) -> tuple[Atom, ...]:
        return tuple(atom for atom in self.additions
                     if atom.predicate == predicate)

    def predicates(self) -> set[str]:
        return {atom.predicate for atom in self.additions}

    def __str__(self) -> str:
        inner = ", ".join(str(atom) for atom in self.additions)
        return "{" + inner + "}"


def freshness_hypotheses(pattern: UpdatePattern,
                         schema: RelationalSchema | None = None
                         ) -> list[Denial]:
    """The Δ of section 5.1 for an insertion pattern.

    For every fresh node identifier ``i`` added as a node of type ``p``:

    * ``← p(i, _, _, ...)`` — no existing node has the new identifier;
    * ``← c(_, _, i, ...)`` for every node type ``c`` that can have a
      ``p`` parent — no existing node is a child of the new node.

    When ``schema`` is given, the child hypotheses are restricted to the
    child predicates the DTD allows (exactly the Δ of example 6);
    without a schema only the first kind is generated.
    """
    hypotheses: list[Denial] = []
    seen: set[tuple[str, str, str]] = set()
    for atom in pattern.additions:
        identifier = atom.args[0] if atom.args else None
        if not isinstance(identifier, Parameter) \
                or identifier not in pattern.fresh_parameters:
            continue
        key = ("id", atom.predicate, identifier.name)
        if key not in seen:
            seen.add(key)
            hypotheses.append(Denial((_wildcard_atom(
                atom.predicate, len(atom.args), {0: identifier}),)))
        if schema is None or not schema.has_predicate(atom.predicate):
            continue
        for child_tag, child in schema.predicates.items():
            if atom.predicate not in child.parent_tags:
                continue
            child_key = ("parent", child_tag, identifier.name)
            if child_key in seen:
                continue
            seen.add(child_key)
            hypotheses.append(Denial((_wildcard_atom(
                child_tag, child.arity(), {2: identifier}),)))
    return hypotheses


def _wildcard_atom(predicate: str, arity: int,
                   pinned: dict[int, Term]) -> Atom:
    args = tuple(
        pinned.get(index, fresh_variable("_")) for index in range(arity))
    return Atom(predicate, args)
