"""The ``Optimize`` transformation: redundancy removal (section 5).

Given a set of input denials and a set of *trusted* denials Δ∪Γ that
are known to hold in the present state, ``optimize``:

* puts every denial in normal form: variable equalities are substituted
  away, decidable comparisons are folded (a true comparison disappears,
  a false one makes the whole denial trivially satisfied), duplicate
  literals are removed, trivially-true aggregate bounds are dropped;
* removes denials provable from the trusted set (θ-subsumption — this
  is how the freshness hypotheses Δ kill the cases that refer to tuples
  that cannot exist yet, and how unchanged copies of the original
  constraints disappear);
* removes denials subsumed by other output denials (this also collapses
  variants, as in example 5 where two expansion branches reduce to the
  same check).

The procedure is terminating and sound: every removal is justified by a
proof from the trusted set or by another kept denial.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datalog.atoms import (
    AggregateCondition,
    Atom,
    Comparison,
    Literal,
    Negation,
    comparison_truth,
)
from repro.datalog.denial import Denial
from repro.datalog.subst import Substitution
from repro.datalog.subsume import subsumes
from repro.datalog.terms import Constant, Parameter, Term, Variable

#: body of a denial whose body became empty during normalization — such
#: a denial is violated by *every* database state (the update pattern is
#: inconsistent with the constraints regardless of the data).
ALWAYS_VIOLATED_BODY = (Comparison("eq", Constant(0), Constant(0)),)


def always_violated(denial: Denial) -> bool:
    """True for the canonical unconditionally-violated denial."""
    return denial.body == ALWAYS_VIOLATED_BODY


def normalize_denial(denial: Denial) -> Denial | None:
    """Normal form of a denial; ``None`` when trivially satisfied.

    ``None`` means the body is unsatisfiable (e.g. ``t ≠ t`` after
    substitution, as in the fourth denial of example 4), so the denial
    holds in every state and can be dropped from a check set.
    """
    literals = list(denial.body)
    changed = True
    while changed:
        changed = False
        for literal in literals:
            if isinstance(literal, Negation):
                outer_vars: set = set()
                for other in literals:
                    if other is not literal:
                        outer_vars |= other.variables()
                outcome = _normalize_negation(literal, outer_vars)
                if outcome is None:
                    return None  # negation is false: body unsatisfiable
                if outcome is True:
                    literals.remove(literal)  # negation is trivially true
                    changed = True
                    break
                if outcome != literal:
                    literals[literals.index(literal)] = outcome
                    changed = True
                    break
                continue
            if isinstance(literal, Comparison):
                truth = comparison_truth(literal)
                if truth is False:
                    return None
                if truth is True:
                    literals.remove(literal)
                    changed = True
                    break
                binding = _equality_binding(literal)
                if binding is not None:
                    variable, image = binding
                    substitution = Substitution({variable: image})
                    literals = [
                        substitution.apply_literal(other)
                        for other in literals if other is not literal
                    ]
                    changed = True
                    break
            elif isinstance(literal, AggregateCondition):
                truth = _aggregate_truth(literal)
                if truth is False:
                    return None
                if truth is True:
                    literals.remove(literal)
                    changed = True
                    break
    deduplicated: list[Literal] = []
    for literal in literals:
        if literal not in deduplicated:
            deduplicated.append(literal)
    if not deduplicated:
        return Denial(ALWAYS_VIOLATED_BODY)
    return Denial(tuple(deduplicated))


def _normalize_negation(negation: Negation,
                        outer_vars: set) -> "Negation | bool | None":
    """Normalize a negated subquery.

    Returns ``True`` when the negation is trivially satisfied (its body
    is unsatisfiable — the literal can be dropped), ``None`` when it is
    trivially false (its body is trivially satisfiable — the enclosing
    denial always holds), or the (possibly rewritten) negation.
    """
    body = list(negation.body)
    changed = True
    while changed:
        changed = False
        for inner in body:
            if not isinstance(inner, Comparison):
                continue
            truth = comparison_truth(inner)
            if truth is False:
                return True  # inner conjunction unsatisfiable
            if truth is True:
                body.remove(inner)
                changed = True
                break
            binding = _local_equality_binding(inner, outer_vars)
            if binding is None:
                continue
            variable, image = binding
            substitution = Substitution({variable: image})
            body = [
                substitution.apply_literal(other)  # type: ignore[misc]
                for other in body if other is not inner
            ]
            changed = True
            break
    deduplicated: list = []
    for inner in body:
        if inner not in deduplicated:
            deduplicated.append(inner)
    if not deduplicated:
        return None  # ¬(true)
    return Negation(tuple(deduplicated))


def _equality_binding(
        comparison: Comparison) -> tuple[Variable, Term] | None:
    if comparison.op != "eq":
        return None
    left, right = comparison.left, comparison.right
    if isinstance(left, Variable):
        return left, right
    if isinstance(right, Variable):
        return right, left
    return None


def _local_equality_binding(
        comparison: Comparison,
        outer_vars: set) -> tuple[Variable, Term] | None:
    """Like :func:`_equality_binding`, but only a variable local to the
    enclosing negation may be eliminated — outer-scoped variables are
    bound elsewhere and must survive as conditions."""
    if comparison.op != "eq":
        return None
    for variable, image in ((comparison.left, comparison.right),
                            (comparison.right, comparison.left)):
        if isinstance(variable, Variable) and variable not in outer_vars:
            return variable, image
    return None


def _aggregate_truth(condition: AggregateCondition) -> bool | None:
    """Decide aggregate conditions that do not depend on the data.

    Counts are always ≥ 0, which settles comparisons against negative
    (or zero, for ``≥``/``<``) constant bounds.
    """
    if condition.aggregate.func != "cnt":
        return None
    bound = condition.bound
    if not isinstance(bound, Constant) \
            or not isinstance(bound.value, (int, float)):
        return None
    value = bound.value
    if condition.op == "ge" and value <= 0:
        return True
    if condition.op == "gt" and value < 0:
        return True
    if condition.op == "lt" and value <= 0:
        return False
    if condition.op == "le" and value < 0:
        return False
    return None


def optimize(denials: Iterable[Denial],
             trusted: Sequence[Denial] = ()) -> list[Denial]:
    """``Optimize_trusted``: normalize, then remove provable denials."""
    normalized: list[Denial] = []
    for denial in denials:
        normal = normalize_denial(denial)
        if normal is None:
            continue
        if always_violated(normal):
            # one unconditional violation makes every other check moot
            return [normal]
        if normal not in normalized:
            normalized.append(normal)

    if trusted:
        rewritten: list[Denial] = []
        for denial in normalized:
            simplified = _drop_trusted_negations(denial, trusted)
            if simplified is not denial:
                simplified_normal = normalize_denial(simplified)
                if simplified_normal is None:
                    continue
                if always_violated(simplified_normal):
                    return [simplified_normal]
                denial = simplified_normal
            if denial not in rewritten:
                rewritten.append(denial)
        normalized = rewritten

    alive = list(normalized)
    for candidate in list(alive):
        others = [denial for denial in alive if denial is not candidate]
        if any(subsumes(trusted_denial, candidate)
               for trusted_denial in trusted):
            alive.remove(candidate)
            continue
        if any(subsumes(other, candidate) for other in others):
            alive.remove(candidate)
    return alive


def _drop_trusted_negations(denial: Denial,
                            trusted: Sequence[Denial]) -> Denial:
    """Drop negation literals whose bodies the trusted set refutes.

    If a trusted denial subsumes ``← body(N)``, the negated subquery is
    unsatisfiable in the present state, so ``¬body`` holds trivially
    and the literal is redundant (e.g. a Δ freshness hypothesis kills a
    negation referring to a fresh identifier).
    """
    kept: list[Literal] = []
    changed = False
    for literal in denial.body:
        if isinstance(literal, Negation):
            as_denial = Denial(literal.body)
            if any(subsumes(trusted_denial, as_denial)
                   for trusted_denial in trusted):
                changed = True
                continue
        kept.append(literal)
    if not changed:
        return denial
    if not kept:
        return Denial(ALWAYS_VIOLATED_BODY)
    return Denial(tuple(kept))
