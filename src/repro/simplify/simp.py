"""``Simp`` — the complete simplification procedure (definition 3)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datalog.denial import Denial
from repro.simplify.after import after
from repro.simplify.optimize import optimize
from repro.simplify.update import UpdatePattern


def simp(constraints: Iterable[Denial], update: UpdatePattern,
         hypotheses: Sequence[Denial] = ()) -> list[Denial]:
    """``Simp^U_Δ(Γ) = Optimize_{Γ∪Δ}(After^U(Γ))``.

    Args:
        constraints: the constraint set Γ, assumed to hold in the
            present state.
        update: the parametric insertion pattern U.
        hypotheses: the extra trusted denials Δ (typically the freshness
            hypotheses of :func:`repro.simplify.freshness_hypotheses`).

    Returns:
        The optimized denials, instantiated with the update's
        parameters.  By theorem 1, they hold in a consistent state D iff
        Γ holds in D^U — so they can be checked *before* executing the
        update.  May raise
        :class:`repro.errors.SimplificationError` when the pattern
        falls outside the supported aggregate fragment; callers then
        fall back to the full check.
    """
    constraints = list(constraints)
    expanded = after(constraints, update)
    trusted = constraints + list(hypotheses)
    return optimize(expanded, trusted)
