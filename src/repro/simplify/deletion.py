"""Sound handling of deletions (an extension beyond the paper).

The paper instantiates its framework for insertions ("XML documents
typically grow") and leaves other update kinds to the general
deductive-database theory.  A useful — and sound — special case is
cheap to decide statically:

a *deletion* removes tuples, so it can never create a new satisfying
binding for a **monotone** denial body: positive database atoms and
built-in comparisons only match fewer bindings, and aggregate values
compared with ``>``/``≥`` only decrease.  For such constraints the
simplified check w.r.t. any deletion is the empty set — the deletion
can be executed with *no* integrity check at all.

Constraints outside this fragment (aggregates bounded below with
``<``/``≤``/``=``/``≠``, whose truth can flip when tuples disappear)
are reported as unsafe; the caller falls back to brute force.
"""

from __future__ import annotations

from typing import Iterable

from repro.datalog.atoms import AggregateCondition
from repro.datalog.denial import Denial

#: aggregate comparisons that cannot become true when values shrink
_MONOTONE_UP_OPS = ("gt", "ge")


def deletion_safe(denial: Denial) -> bool:
    """True if no deletion can ever violate ``denial``.

    The body is a conjunction of positive atoms, comparisons and
    aggregate conditions; removing tuples can only remove satisfying
    bindings unless an aggregate condition is anti-monotone (a shrinking
    count/sum can start satisfying ``< c``-style bounds, and ``= c`` /
    ``≠ c`` can flip either way).
    """
    if denial.negations():
        # removing the tuple a negated subquery matched can flip the
        # negation to true (e.g. deleting a referenced publication)
        return False
    for condition in denial.aggregate_conditions():
        if condition.op not in _MONOTONE_UP_OPS:
            return False
        if condition.aggregate.func not in ("cnt", "max"):
            # removing tuples can *raise* a minimum or an average, and
            # a sum over negative values can grow when one disappears
            return False
    return True


def simp_deletion(constraints: Iterable[Denial]) -> list[Denial]:
    """``Simp`` w.r.t. an arbitrary deletion: the empty check set.

    Only valid when every constraint is :func:`deletion_safe`; raises
    ``ValueError`` otherwise so callers cannot misuse it.
    """
    unsafe = [denial for denial in constraints
              if not deletion_safe(denial)]
    if unsafe:
        raise ValueError(
            "deletion is not statically safe for: "
            + "; ".join(str(denial) for denial in unsafe))
    return []
