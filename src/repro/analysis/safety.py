"""Datalog safety / range-restriction analysis (codes ``XIC2xx``).

The evaluator (``datalog/evaluate.py``) is a backtracking join: it can
order literals freely, so a denial is *safe* when **some** order binds
every variable a comparison, negation or aggregate needs before that
literal runs.  This pass computes the set of statically bindable
variables as a fixpoint — exactly the binding rules the evaluator
implements — and reports the literals left stranded:

* ``XIC201`` — a comparison over a variable no database literal binds
  (the evaluator's "unsafe comparison" error);
* ``XIC202`` — a variable shared between a negation and the rest of the
  body that cannot be bound before the negation runs;
* ``XIC203`` — an aggregate whose correlated variables or bound term
  cannot be grounded, or whose aggregated term is not bound by the
  aggregate body.

``datalog/evaluate.py`` keeps defensive run-time raises for uncompiled
denials, pointing back at these codes.
"""

from __future__ import annotations

from repro.analysis.diagnostic import Diagnostic, make_diagnostic
from repro.datalog.atoms import (
    AggregateCondition,
    Comparison,
    Negation,
)
from repro.datalog.denial import Denial
from repro.datalog.terms import Term, Variable, term_variables

UNSAFE_COMPARISON = "XIC201"
UNSAFE_NEGATION = "XIC202"
UNSAFE_AGGREGATE = "XIC203"


def _vars(term: Term) -> set[Variable]:
    return term_variables(term)


def _aggregate_group_vars(condition: AggregateCondition) -> set[Variable]:
    group: set[Variable] = set()
    for term in condition.aggregate.group_by:
        group |= _vars(term)
    return group


def _aggregate_ready(condition: AggregateCondition, denial: Denial,
                     bound: set[Variable]) -> bool:
    """Whether the evaluator could run this aggregate given ``bound``."""
    shared = condition.aggregate.variables() & _other_variables(
        denial, condition)
    group = _aggregate_group_vars(condition)
    return (shared - group) <= bound and _vars(condition.bound) <= bound


def _other_variables(denial: Denial, literal: object) -> set[Variable]:
    result: set[Variable] = set()
    seen_self = False
    for other in denial.body:
        if other is literal and not seen_self:
            seen_self = True
            continue
        result |= other.variables()
    return result


def bound_variables(denial: Denial) -> set[Variable]:
    """Variables some evaluation order is guaranteed to bind.

    Fixpoint over the evaluator's binding rules: positive database
    atoms bind all their variables; an ``=`` comparison with one side
    fully bound and the other a bare variable binds that variable;
    a runnable aggregate binds its group-by variables by enumerating
    the groups.  Parameters count as bound (they are instantiated
    before evaluation).
    """
    bound: set[Variable] = set()
    for atom in denial.atoms():
        bound |= atom.variables()
    changed = True
    while changed:
        changed = False
        for comparison in denial.comparisons():
            if comparison.op != "eq":
                continue
            for side, other in ((comparison.left, comparison.right),
                                (comparison.right, comparison.left)):
                if isinstance(side, Variable) and side not in bound \
                        and _vars(other) <= bound:
                    bound.add(side)
                    changed = True
        for condition in denial.aggregate_conditions():
            group = _aggregate_group_vars(condition)
            if group - bound and _aggregate_ready(condition, denial, bound):
                bound |= group
                changed = True
    return bound


def denial_safety_issues(denial: Denial) -> list[tuple[str, str]]:
    """``(code, message)`` pairs for every safety violation of a denial."""
    issues: list[tuple[str, str]] = []
    bound = bound_variables(denial)

    for comparison in denial.comparisons():
        unbound = comparison.variables() - bound
        if unbound:
            names = ", ".join(sorted(var.name for var in unbound))
            issues.append((
                UNSAFE_COMPARISON,
                f"comparison {comparison} is unsafe: variable(s) {names} "
                "are not bound by any database literal"))

    for negation in denial.negations():
        shared = negation.variables() & _other_variables(denial, negation)
        unbound = shared - bound
        if unbound:
            names = ", ".join(sorted(var.name for var in unbound))
            issues.append((
                UNSAFE_NEGATION,
                f"negation {negation} shares variable(s) {names} with the "
                "rest of the body, but nothing binds them before the "
                "negation runs"))
        issues.extend(_negation_inner_issues(negation, bound))

    for condition in denial.aggregate_conditions():
        issues.extend(_aggregate_issues(condition, denial, bound))

    return issues


def _negation_inner_issues(negation: Negation,
                           bound: set[Variable]) -> list[tuple[str, str]]:
    """Comparisons inside a negation body need inner-or-outer bindings."""
    inner_bound = set(bound)
    for atom in negation.atoms():
        inner_bound |= atom.variables()
    inner_bound = _close_over_equalities(
        list(negation.comparisons()), inner_bound)
    issues: list[tuple[str, str]] = []
    for comparison in negation.comparisons():
        unbound = comparison.variables() - inner_bound
        if unbound:
            names = ", ".join(sorted(var.name for var in unbound))
            issues.append((
                UNSAFE_COMPARISON,
                f"comparison {comparison} inside negation {negation} is "
                f"unsafe: variable(s) {names} are never bound"))
    return issues


def _aggregate_issues(condition: AggregateCondition, denial: Denial,
                      bound: set[Variable]) -> list[tuple[str, str]]:
    issues: list[tuple[str, str]] = []
    aggregate = condition.aggregate
    shared = aggregate.variables() & _other_variables(denial, condition)
    group = _aggregate_group_vars(condition)
    unbound = (shared - group) - bound
    if unbound:
        names = ", ".join(sorted(var.name for var in unbound))
        issues.append((
            UNSAFE_AGGREGATE,
            f"aggregate {condition} shares non-group variable(s) {names} "
            "with the rest of the body, but nothing binds them before "
            "the aggregate runs"))
    if _vars(condition.bound) - bound:
        issues.append((
            UNSAFE_AGGREGATE,
            f"aggregate bound {condition.bound} of {condition} is not "
            "ground at evaluation time"))
    body_bound = set(bound) | group
    for atom in aggregate.body:
        body_bound |= atom.variables()
    if aggregate.term is not None \
            and _vars(aggregate.term) - body_bound:
        names = ", ".join(sorted(
            var.name for var in _vars(aggregate.term) - body_bound))
        issues.append((
            UNSAFE_AGGREGATE,
            f"aggregated term {aggregate.term} of {condition} is not "
            f"bound by the aggregate body (unbound: {names})"))
    return issues


def _close_over_equalities(comparisons: list[Comparison],
                           bound: set[Variable]) -> set[Variable]:
    """Propagate half-bound ``=`` bindings to fixpoint."""
    changed = True
    while changed:
        changed = False
        for comparison in comparisons:
            if comparison.op != "eq":
                continue
            for side, other in ((comparison.left, comparison.right),
                                (comparison.right, comparison.left)):
                if isinstance(side, Variable) and side not in bound \
                        and _vars(other) <= bound:
                    bound.add(side)
                    changed = True
    return bound


def constraint_safety_diagnostics(
        name: str, source: str | None,
        denials: list[Denial]) -> list[Diagnostic]:
    """Safety diagnostics for a compiled constraint's denials."""
    diagnostics: list[Diagnostic] = []
    for index, denial in enumerate(denials):
        for code, message in denial_safety_issues(denial):
            suffix = f" (denial {index + 1} of {len(denials)})" \
                if len(denials) > 1 else ""
            diagnostics.append(make_diagnostic(
                code, message + suffix, subject=name, source=source,
                hint="every variable must occur in a positive database "
                     "literal (or be equated to one that does)"))
    return diagnostics
