"""Lock-discipline annotations and the canonical lock hierarchy.

The paper's philosophy — move integrity work from run time to compile
time — applied to the codebase itself: the locking discipline that
PRs 3–6 grew across eight modules is *declared* here and *proved* by
the static pass in :mod:`repro.analysis.concurrency.checker` (codes
``XIC501``–``XIC505``, surfaced through ``repro lint --concurrency``).

Three declaration forms exist:

* :func:`guarded_by` — a class decorator naming the attributes a lock
  protects (``@guarded_by("self._lock", "_elements_by_tag", ...)``);
* :func:`requires_lock` — a function decorator marking a helper that
  must only be called with the named lock already held
  (``@requires_lock("self._lock")``);
* ``# guarded-by: <LOCK_NAME>`` — a trailing comment on a
  module-level variable's defining assignment, tying the global to a
  module-level lock.

All three are run-time no-ops (the decorators only stash their
arguments on the decorated object for introspection); the static
checker reads them from the AST without importing the annotated
modules.  A trailing ``# lock: ignore`` comment suppresses the
discipline checks on one line — for documented benign races such as
the failpoint registry's lock-free fast path.

:data:`LOCK_ORDER` is the canonical acquisition order (outermost
first).  The static pass validates every statically visible nesting
edge against it (``XIC502``) and the run-time sanitizer
(:mod:`repro.analysis.concurrency.sanitizer`) enforces it on armed
processes, so the two sides can never silently diverge.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_T = TypeVar("_T")

#: Canonical lock acquisition order, outermost first.  A thread may
#: only acquire a lock whose rank is *strictly greater* than every
#: lock it already holds (reentrant re-acquisition of the same RLock
#: instance excepted).  The cache locks are leaves: nothing may be
#: acquired underneath them except the failpoint registry, which the
#: instrumented ``fail.point`` sites reach from inside any scope.
LOCK_ORDER: tuple[str, ...] = (
    "service.store",          # DocumentStore reader–writer lock
    "service.snapshots",      # SnapshotManager pin/publish bookkeeping
    "document",               # Document._lock (per-document RLock)
    "service.persistence",    # DurableLog file/sequence lock
    "core.update_cache",      # guard._UPDATE_CACHE_LOCK
    "xupdate.select_cache",   # apply._SELECT_CACHE_LOCK
    "xquery.index_cache",     # engine._IndexLRU._lru_lock
    "xquery.dependency_cache",  # optimizer._DEPENDENCY_LOCK
    "xquery.plan_cache",      # optimizer._PLAN_LOCK
    "planner.plan_cache",     # planner._PLAN_LOCK
    "planner.priors",         # planner._PRIORS_LOCK
    "sanitizer.violations",   # sanitizer._VIOLATIONS_LOCK
    "testing.failpoints",     # failpoints registry (innermost)
)

#: name → rank index into :data:`LOCK_ORDER`
LOCK_RANKS: dict[str, int] = {
    name: rank for rank, name in enumerate(LOCK_ORDER)}


def rank_of(name: str) -> int | None:
    """Rank of a canonical lock name (``None`` for unknown names)."""
    return LOCK_RANKS.get(name)


def guarded_by(lock: str, *fields: str) -> Callable[[_T], _T]:
    """Declare that ``fields`` of the decorated class are protected by
    the lock reached through expression ``lock`` (e.g. ``self._lock``,
    ``self.store.lock``).

    The static pass (``XIC501``) then requires every access to those
    attributes to happen inside a matching ``with`` scope or inside a
    :func:`requires_lock`-marked helper.  At run time the decorator
    only records the declaration on the class.
    """

    def decorate(cls: _T) -> _T:
        declared = dict(getattr(cls, "__guarded_by__", {}))
        for field in fields:
            declared[field] = lock
        cls.__guarded_by__ = declared  # type: ignore[attr-defined]
        return cls

    return decorate


def requires_lock(lock: str) -> Callable[[_T], _T]:
    """Declare that the decorated function must only be called with
    the lock reached through expression ``lock`` already held.

    The static pass treats the lock as held throughout the function
    body (it is the annotation form of a ``with`` scope that lives in
    every caller) and charges call sites intraprocedurally where it
    can resolve them.  At run time the decorator is a no-op.
    """

    def decorate(func: _T) -> _T:
        held = getattr(func, "__requires_lock__", ())
        func.__requires_lock__ = (*held, lock)  # type: ignore
        return func

    return decorate
