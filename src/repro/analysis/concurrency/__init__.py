"""Lock-discipline tooling: annotations, static checker, sanitizer.

This package deliberately keeps its import-time surface tiny — only
the annotation decorators and the sanitizer factories — because the
runtime modules it checks (``xtree.node``, ``service.locks``, the
cache modules) import it at *their* import time.  The AST checker
itself (:mod:`.checker`/:mod:`.registry`) is imported lazily by the
CLI via :func:`concurrency_diagnostics`.
"""

from __future__ import annotations

from repro.analysis.concurrency.annotations import (
    LOCK_ORDER,
    LOCK_RANKS,
    guarded_by,
    rank_of,
    requires_lock,
)
from repro.analysis.concurrency.sanitizer import (
    LockOrderViolation,
    Violation,
    arm,
    armed,
    clear_violations,
    disarm,
    make_lock,
    make_rlock,
    violations,
)

__all__ = [
    "LOCK_ORDER",
    "LOCK_RANKS",
    "LockOrderViolation",
    "Violation",
    "arm",
    "armed",
    "clear_violations",
    "concurrency_diagnostics",
    "disarm",
    "guarded_by",
    "make_lock",
    "make_rlock",
    "rank_of",
    "requires_lock",
    "violations",
]


def concurrency_diagnostics(paths):
    """Run the XIC5xx static pass (lazy import of the AST machinery)."""
    from repro.analysis.concurrency.checker import (
        concurrency_diagnostics as run,
    )

    return run(paths)
