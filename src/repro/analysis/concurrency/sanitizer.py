"""Opt-in run-time lock-order sanitizer.

The dynamic half of the lock-discipline tooling: while the static
pass (:mod:`repro.analysis.concurrency.checker`) proves what it can
see in the AST, the sanitizer watches the locks a *live* process
actually takes and enforces the canonical
:data:`~repro.analysis.concurrency.annotations.LOCK_ORDER` on every
acquisition.  It records, per thread, the stack of named locks
currently held (with the Python call stack at each acquisition) and
flags

* acquiring a lock whose rank is not strictly greater than every held
  lock (an ordering inversion: two threads doing this in opposite
  orders is the classic deadlock), and
* re-acquiring a held non-reentrant lock (self-deadlock).

Violations are recorded with **both** stacks — the one that took the
held lock and the one attempting the inversion — and raised as
:class:`LockOrderViolation` so CI legs fail loudly.

Arming
------
The sanitizer is **opt-in**: set ``REPRO_LOCK_SANITIZER=1`` before
the process starts (the stress and faultcheck CI legs do), or call
:func:`arm` programmatically before constructing the documents and
stores under test.  When disarmed — the default — :func:`make_lock`
and :func:`make_rlock` return *bare* ``threading`` primitives: no
wrapper object is installed, so the production fast path pays nothing.
Locks created while disarmed stay bare even if the process is armed
later; arming is therefore a construction-time decision, which is why
the CI legs arm via the environment.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass

from repro.analysis.concurrency.annotations import rank_of


class LockOrderViolation(RuntimeError):
    """A thread violated the canonical lock acquisition order."""


@dataclass(frozen=True)
class Violation:
    """One recorded ordering violation (kept even when the raised
    :class:`LockOrderViolation` is swallowed by the caller)."""

    thread: str
    #: canonical name of the lock being acquired
    acquiring: str
    #: canonical name of the already-held lock that outranks it
    holding: str
    #: formatted stack of the offending acquisition attempt
    acquire_stack: str
    #: formatted stack captured when the held lock was taken
    holding_stack: str

    def render(self) -> str:
        return (
            f"lock order violation in thread {self.thread!r}: "
            f"acquiring {self.acquiring!r} while holding "
            f"{self.holding!r}\n"
            f"--- stack holding {self.holding!r} ---\n"
            f"{self.holding_stack}"
            f"--- stack acquiring {self.acquiring!r} ---\n"
            f"{self.acquire_stack}"
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()


class _Held:
    """One entry of a thread's held-lock stack."""

    __slots__ = ("name", "rank", "instance", "stack")

    def __init__(self, name: str, rank: int, instance: object,
                 stack: str) -> None:
        self.name = name
        self.rank = rank
        self.instance = instance
        self.stack = stack


_TLS = threading.local()
_VIOLATIONS: list[Violation] = []  # guarded-by: _VIOLATIONS_LOCK
_VIOLATIONS_LOCK = threading.Lock()
_armed = os.environ.get("REPRO_LOCK_SANITIZER", "") not in ("", "0")


def armed() -> bool:
    """Whether locks created *now* would be sanitized."""
    return _armed


def arm() -> None:
    """Sanitize locks created from here on (tests; CI uses the env)."""
    global _armed
    _armed = True


def disarm() -> None:
    """Stop sanitizing newly created locks and drop recorded
    violations.  Locks wrapped while armed keep their wrappers (they
    only stop mattering once the objects holding them are dropped)."""
    global _armed
    _armed = False
    clear_violations()


def violations() -> list[Violation]:
    """Every ordering violation recorded since the last clear."""
    with _VIOLATIONS_LOCK:
        return list(_VIOLATIONS)


def clear_violations() -> None:
    with _VIOLATIONS_LOCK:
        _VIOLATIONS.clear()


def _held_stack() -> "list[_Held]":
    held = getattr(_TLS, "held", None)
    if held is None:
        held = _TLS.held = []
    return held


def _capture_stack() -> str:
    # drop the two sanitizer-internal frames at the top
    return "".join(traceback.format_stack()[:-2])


def note_before_acquire(name: str, instance: object,
                        reentrant: bool) -> None:
    """Order check, called *before* blocking on the acquisition.

    Raises :class:`LockOrderViolation` (after recording) when the
    acquisition would violate the canonical order; checking before
    blocking means the violation is reported instead of deadlocking.
    """
    rank = rank_of(name)
    if rank is None:
        return
    stack = _held_stack()
    for held in stack:
        if held.instance is instance:
            if reentrant:
                # re-entry of a held RLock adds no acquisition edge
                return
            _report(name, held)
    for held in stack:
        if held.rank >= rank:
            _report(name, held)


def note_acquired(name: str, instance: object) -> None:
    """Push the lock onto the calling thread's held stack."""
    rank = rank_of(name)
    if rank is None:
        return
    _held_stack().append(_Held(name, rank, instance, _capture_stack()))


def note_release(name: str, instance: object) -> None:
    """Pop the most recent hold of ``instance`` from the held stack."""
    if rank_of(name) is None:
        return
    held = _held_stack()
    for index in range(len(held) - 1, -1, -1):
        if held[index].instance is instance:
            del held[index]
            return


def _report(acquiring: str, held: _Held) -> None:
    violation = Violation(
        thread=threading.current_thread().name,
        acquiring=acquiring,
        holding=held.name,
        acquire_stack=_capture_stack(),
        holding_stack=held.stack,
    )
    with _VIOLATIONS_LOCK:
        _VIOLATIONS.append(violation)
    raise LockOrderViolation(violation.render())


class SanitizedLock:
    """A named ``threading.Lock``/``RLock`` wrapper that reports every
    acquisition to the sanitizer.  Only installed while armed."""

    __slots__ = ("name", "_inner", "_reentrant")

    def __init__(self, name: str, inner, reentrant: bool) -> None:
        self.name = name
        self._inner = inner
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1):
        note_before_acquire(self.name, self, self._reentrant)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            note_acquired(self.name, self)
        return acquired

    def release(self) -> None:
        note_release(self.name, self)
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        return locked() if locked is not None else False


def make_lock(name: str):
    """A mutex for the canonical rank ``name``: a bare
    ``threading.Lock`` when disarmed, a sanitized wrapper when armed."""
    if not _armed:
        return threading.Lock()
    return SanitizedLock(name, threading.Lock(), reentrant=False)


def make_rlock(name: str):
    """Reentrant variant of :func:`make_lock`."""
    if not _armed:
        return threading.RLock()
    return SanitizedLock(name, threading.RLock(), reentrant=True)
