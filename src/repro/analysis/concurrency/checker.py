"""The lock-discipline static analyzer (``XIC501``–``XIC505``).

An intraprocedural AST pass over the modules collected by
:mod:`repro.analysis.concurrency.registry`, reporting:

* ``XIC501`` — a ``@guarded_by``-declared attribute (or a
  ``# guarded-by:`` module global) accessed outside the matching
  ``with``-scope and outside a ``@requires_lock``-marked helper;
* ``XIC502`` — a lock-acquisition ordering problem: a statically
  visible nesting edge that runs *backwards* against the canonical
  :data:`~repro.analysis.concurrency.annotations.LOCK_ORDER`, or a
  cycle in the acquisition graph (nested ``with`` blocks plus a
  same-module/same-class call-graph closure);
* ``XIC503`` — a raw ``.acquire*()`` call whose release is not
  protected by an immediately following ``try/finally`` (use ``with``
  or the try/finally idiom so an exception cannot leak the lock);
* ``XIC504`` — a blocking call (sleep, file I/O, subprocess, a
  ``.wait()`` on a *foreign* condition) made while a document or
  store lock is held;
* ``XIC505`` — a lock creation site not covered by any
  ``guarded_by``/``# guarded-by:`` declaration (undeclared locks are
  invisible to this analyzer and to the run-time sanitizer's rank
  table, so they must be annotated or explicitly ignored).

The held-lock state is tracked *textually* over normalized ``with``
expressions (``self._lock``, ``self.store.write_locked()`` →
``self.store.lock``), which is what makes the pass intraprocedural
and annotation-driven rather than a whole-program alias analysis —
the same trade the paper makes when it checks updates against
constraints at compile time instead of re-proving the world at run
time.  A trailing ``# lock: ignore`` comment suppresses any of these
codes on one line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.concurrency.annotations import LOCK_RANKS
from repro.analysis.concurrency.registry import (
    ClassInfo,
    ModuleInfo,
    Registry,
    canonical_of,
    decorator_requires,
    scan_paths,
)
from repro.analysis.diagnostic import Diagnostic, make_diagnostic

#: call targets considered blocking under a document/store lock
_BLOCKING_EXACT = {"time.sleep", "sleep", "input", "open", "os.system"}
_BLOCKING_SUFFIXES = (
    ".read_text", ".write_text", ".read_bytes", ".write_bytes",
    ".readline", ".readlines", ".sleep",
)
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.")

#: holding one of these ranks makes blocking calls reportable
_MAJOR_LOCKS = {"service.store", "document"}

#: constructors and helpers exempt from the access discipline: a lock
#: implementation's own acquire/release plumbing, and object
#: construction (the object is not shared yet)
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__",
                   "__enter__", "__exit__"}


def concurrency_diagnostics(paths: "list[str]") -> list[Diagnostic]:
    """Run the full lock-discipline pass over ``paths``."""
    registry = scan_paths(paths)
    diagnostics: list[Diagnostic] = []
    graph = _Graph()
    for module in registry.modules:
        _check_undeclared_locks(module, diagnostics)
        for context, function in _iter_functions(module):
            checker = _FunctionChecker(registry, module, context,
                                       function, diagnostics, graph)
            checker.run()
    graph.close_over_calls()
    diagnostics.extend(graph.order_diagnostics())
    diagnostics.sort(key=lambda d: (d.file or "", d.code, d.line or 0,
                                    d.message))
    return diagnostics


# ---------------------------------------------------------------------------
# XIC505 — undeclared locks
# ---------------------------------------------------------------------------

def _check_undeclared_locks(module: ModuleInfo,
                            diagnostics: list[Diagnostic]) -> None:
    guarding = set(module.guarded_globals.values())
    for name, site in module.global_locks.items():
        if site.line in module.ignore_lines:
            continue
        if name in guarding or name in module.requires_exprs:
            continue
        diagnostics.append(make_diagnostic(
            "XIC505",
            f"module lock {name!r} guards nothing: no "
            f"'# guarded-by: {name}' comment ties a global to it",
            subject=name, file=module.path, line=site.line,
            hint="declare the guarded global(s) or add "
                 "'# lock: ignore' with a reason"))
    for cls in module.classes.values():
        declared = set(cls.guards.values())
        for attr, site in cls.lock_attrs.items():
            if site.line in module.ignore_lines:
                continue
            expr = f"self.{attr}"
            # requires_lock alone is not coverage here: helpers assert
            # the lock is held, only guarded_by says what it protects
            if expr in declared:
                continue
            diagnostics.append(make_diagnostic(
                "XIC505",
                f"lock {expr!r} of class {cls.name!r} has no "
                "guarded_by declaration",
                subject=f"{cls.name}.{attr}",
                file=module.path, line=site.line,
                hint=f"add @guarded_by({expr!r}, ...) to "
                     f"{cls.name} or '# lock: ignore' with a reason"))


# ---------------------------------------------------------------------------
# Function iteration
# ---------------------------------------------------------------------------

def _iter_functions(module: ModuleInfo):
    """Yield ``(class or None, function)`` for every function in the
    module, including methods and nested functions (each checked with
    its own empty held-set: a closure may run on any thread later)."""
    stack: list[tuple[ClassInfo | None, ast.AST]] = \
        [(None, module.tree)]
    while stack:
        context, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append(
                    (module.classes.get(child.name), child))
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                yield context, child
                stack.append((context, child))


# ---------------------------------------------------------------------------
# The per-function pass
# ---------------------------------------------------------------------------

@dataclass
class _Edge:
    source: str
    target: str
    file: str
    line: int


@dataclass
class _FunctionFacts:
    """What one function contributes to the acquisition graph."""

    #: canonical names of locks this function acquires directly
    acquires: set[str] = field(default_factory=set)
    #: (callee key, canonical names held at the call, file, line)
    calls: list[tuple[tuple, frozenset, str, int]] = \
        field(default_factory=list)


class _Graph:
    """The static lock-acquisition graph (XIC502)."""

    def __init__(self) -> None:
        self.edges: list[_Edge] = []
        self._seen: set[tuple[str, str]] = set()
        self.functions: dict[tuple, _FunctionFacts] = {}

    def facts_for(self, key: tuple) -> _FunctionFacts:
        return self.functions.setdefault(key, _FunctionFacts())

    def add_edge(self, source: str, target: str, file: str,
                 line: int) -> None:
        if (source, target) in self._seen:
            return
        self._seen.add((source, target))
        self.edges.append(_Edge(source, target, file, line))

    def close_over_calls(self) -> None:
        """Charge callees' (transitive) acquisitions to call sites."""
        closure: dict[tuple, set[str]] = {}

        def acquired(key: tuple, trail: frozenset) -> set[str]:
            if key in closure:
                return closure[key]
            if key in trail:
                return set()
            facts = self.functions.get(key)
            if facts is None:
                return set()
            total = set(facts.acquires)
            for callee, _, _, _ in facts.calls:
                total |= acquired(callee, trail | {key})
            closure[key] = total
            return total

        for key, facts in list(self.functions.items()):
            for callee, held, file, line in facts.calls:
                for target in acquired(callee, frozenset({key})):
                    for source in held:
                        # a reentrant re-acquisition of the lock the
                        # caller already holds is not a new edge
                        if source != target:
                            self.add_edge(source, target, file, line)

    def order_diagnostics(self) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for edge in self.edges:
            source_rank = LOCK_RANKS.get(edge.source)
            target_rank = LOCK_RANKS.get(edge.target)
            if source_rank is None or target_rank is None:
                continue
            if source_rank >= target_rank:
                diagnostics.append(make_diagnostic(
                    "XIC502",
                    f"lock {edge.target!r} acquired while holding "
                    f"{edge.source!r}, against the canonical order "
                    "(see LOCK_ORDER in "
                    "repro.analysis.concurrency.annotations)",
                    subject=f"{edge.source} -> {edge.target}",
                    file=edge.file, line=edge.line,
                    hint="acquire locks outermost-first; restructure "
                         "so the inner lock is released first"))
        diagnostics.extend(self._cycle_diagnostics())
        return diagnostics

    def _cycle_diagnostics(self) -> list[Diagnostic]:
        adjacency: dict[str, list[_Edge]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.source, []).append(edge)
        diagnostics: list[Diagnostic] = []
        reported: set[frozenset] = set()
        state: dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(name: str, path: list[_Edge]) -> None:
            state[name] = 1
            for edge in adjacency.get(name, ()):
                if state.get(edge.target) == 1:
                    cycle = path + [edge]
                    start = next(
                        index for index, entry in enumerate(cycle)
                        if entry.source == edge.target)
                    loop = cycle[start:]
                    names = frozenset(
                        entry.source for entry in loop)
                    if names in reported:
                        continue
                    reported.add(names)
                    rendered = " -> ".join(
                        [loop[0].source]
                        + [entry.target for entry in loop])
                    diagnostics.append(make_diagnostic(
                        "XIC502",
                        "lock acquisition cycle (deadlock risk): "
                        + rendered,
                        subject=rendered, file=loop[-1].file,
                        line=loop[-1].line,
                        hint="pick one global order for these locks "
                             "and acquire them outermost-first "
                             "everywhere"))
                elif state.get(edge.target) is None:
                    visit(edge.target, path + [edge])
            state[name] = 2

        for name in list(adjacency):
            if state.get(name) is None:
                visit(name, [])
        return diagnostics


class _FunctionChecker:
    """Checks one function body: XIC501, XIC503, XIC504 + graph facts."""

    def __init__(self, registry: Registry, module: ModuleInfo,
                 cls: "ClassInfo | None",
                 function: "ast.FunctionDef | ast.AsyncFunctionDef",
                 diagnostics: list[Diagnostic],
                 graph: _Graph) -> None:
        self.registry = registry
        self.module = module
        self.cls = cls
        self.function = function
        self.diagnostics = diagnostics
        self.graph = graph
        self.key = (module.path, cls.name if cls else None,
                    function.name)
        self.facts = graph.facts_for(self.key)
        #: normalized held lock expressions, innermost last
        self.held: list[str] = []
        #: canonical names of currently held, resolvable locks
        self.held_canonical: list[str] = []
        self.exempt_access = (
            function.name in _EXEMPT_METHODS
            or function.name.startswith(("acquire", "release")))
        for expr in decorator_requires(function):
            self._push_lock(expr, function.lineno, edge=False)

    # -- helpers ----------------------------------------------------------

    def _ignored(self, node: ast.AST) -> bool:
        return getattr(node, "lineno", 0) in self.module.ignore_lines

    def _report(self, code: str, message: str, node: ast.AST,
                subject: "str | None" = None,
                hint: "str | None" = None) -> None:
        if self._ignored(node):
            return
        self.diagnostics.append(make_diagnostic(
            code, message, subject=subject, file=self.module.path,
            line=getattr(node, "lineno", None), hint=hint))

    def _normalize(self, text: str) -> str:
        """``X.read_locked()``/``X.write_locked()`` → ``X.lock``."""
        for suffix in (".read_locked()", ".write_locked()"):
            if text.endswith(suffix):
                base = text[: -len(suffix)]
                if base.rsplit(".", 1)[-1] == "lock":
                    return base
                return base + ".lock"
        return text

    def _resolve(self, expr: str) -> "str | None":
        """Canonical rank/graph name of a held-lock expression."""
        if expr.endswith(".lock") or expr == "lock":
            return "service.store"
        last = expr.rsplit(".", 1)[-1]
        if "." not in expr:
            site = self.module.global_locks.get(expr)
            if site is not None:
                return canonical_of(site)
            return None
        if self.cls is not None and expr == f"self.{last}":
            site = self.cls.lock_attrs.get(last)
            if site is not None:
                return canonical_of(site)
        site = self.registry.unique_lock_attr(last)
        if site is not None:
            return canonical_of(site)
        return None

    def _push_lock(self, raw: str, lineno: int, edge: bool) -> bool:
        """Track ``raw`` as held; returns True (always pushes)."""
        text = self._normalize(raw)
        canonical = self._resolve(text)
        if canonical is not None and edge:
            self.facts.acquires.add(canonical)
            for held in self.held_canonical:
                if held == canonical and text in self.held:
                    continue  # reentrant same-expression nesting
                if held != canonical or text not in self.held:
                    if held != canonical:
                        self.graph.add_edge(held, canonical,
                                            self.module.path, lineno)
                    elif not self._ignored_line(lineno):
                        # same rank, different expression: two
                        # instances of one rank nested
                        self.diagnostics.append(make_diagnostic(
                            "XIC502",
                            f"two {canonical!r} locks nested; "
                            "instances of one rank have no defined "
                            "order",
                            subject=canonical, file=self.module.path,
                            line=lineno))
        self.held.append(text)
        self.held_canonical.append(canonical) \
            if canonical is not None else None
        return True

    def _ignored_line(self, lineno: int) -> bool:
        return lineno in self.module.ignore_lines

    def _holds(self, required: str) -> bool:
        return required in self.held

    def _holds_major(self) -> bool:
        return any(name in _MAJOR_LOCKS
                   for name in self.held_canonical)

    # -- the walk ---------------------------------------------------------

    def run(self) -> None:
        self._visit_block(self.function.body)

    def _visit_block(self, statements: list[ast.stmt]) -> None:
        for index, statement in enumerate(statements):
            follower = statements[index + 1] \
                if index + 1 < len(statements) else None
            self._visit_statement(statement, follower)

    def _visit_statement(self, statement: ast.stmt,
                         follower: "ast.stmt | None") -> None:
        if isinstance(statement, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            return  # checked separately with a fresh context
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            pushed = 0
            canonical_pushed = 0
            for item in statement.items:
                text = _unparse(item.context_expr)
                if text is None:
                    continue
                before = len(self.held_canonical)
                self._check_expression(item.context_expr)
                self._push_lock(text, statement.lineno, edge=True)
                pushed += 1
                canonical_pushed += len(self.held_canonical) - before
            self._visit_block(statement.body)
            for _ in range(pushed):
                self.held.pop()
            for _ in range(canonical_pushed):
                self.held_canonical.pop()
            return
        if isinstance(statement, ast.Try):
            self._visit_block(statement.body)
            for handler in statement.handlers:
                self._visit_block(handler.body)
            self._visit_block(statement.orelse)
            self._visit_block(statement.finalbody)
            return
        if isinstance(statement, (ast.If, ast.While)):
            self._check_expression(statement.test)
            self._visit_block(statement.body)
            self._visit_block(statement.orelse)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._check_expression(statement.iter)
            self._check_expression(statement.target)
            self._visit_block(statement.body)
            self._visit_block(statement.orelse)
            return
        # leaf statement: check raw-acquire shape, then expressions
        self._check_raw_acquire(statement, follower)
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._check_expression(child)
        return

    # -- XIC501 -----------------------------------------------------------

    def _check_expression(self, node: ast.expr) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute):
                self._check_attribute(child)
            elif isinstance(child, ast.Name):
                self._check_global(child)
            elif isinstance(child, ast.Call):
                self._check_blocking_call(child)
            elif isinstance(child, (ast.Lambda, ast.FunctionDef)):
                pass  # closures get their own (empty-held) pass

    def _check_attribute(self, node: ast.Attribute) -> None:
        if self.exempt_access:
            return
        attr = node.attr
        prefix = _unparse(node.value)
        if prefix is None:
            return
        required: "str | None" = None
        if self.cls is not None and prefix == "self" \
                and attr in self.cls.guards:
            required = self.cls.guards[attr]
        elif attr.startswith("_"):
            owner = self.registry.unique_guard(attr)
            if owner is not None:
                owner_class, lock_expr = owner
                if prefix == "self":
                    # only the owning class's own methods qualify;
                    # a same-named private attr elsewhere is a
                    # different object
                    return
                required = prefix + lock_expr[len("self"):]
        if required is None:
            return
        if self._holds(required):
            return
        self._report(
            "XIC501",
            f"attribute {prefix}.{attr!s} is guarded by "
            f"{required!r} but accessed without it",
            node, subject=f"{prefix}.{attr}",
            hint=f"wrap the access in 'with {required}:' or mark "
                 f"the helper @requires_lock({required!r})")

    def _check_global(self, node: ast.Name) -> None:
        if self.exempt_access:
            return
        lock_name = self.module.guarded_globals.get(node.id)
        if lock_name is None:
            return
        if self._holds(lock_name):
            return
        self._report(
            "XIC501",
            f"module global {node.id!r} is guarded by {lock_name!r} "
            "but accessed without it",
            node, subject=node.id,
            hint=f"wrap the access in 'with {lock_name}:'")

    # -- XIC503 -----------------------------------------------------------

    def _check_raw_acquire(self, statement: ast.stmt,
                           follower: "ast.stmt | None") -> None:
        if self.exempt_access:
            return
        if not isinstance(statement, ast.Expr) \
                or not isinstance(statement.value, ast.Call):
            return
        call = statement.value
        if not isinstance(call.func, ast.Attribute) \
                or not call.func.attr.startswith("acquire"):
            return
        base = _unparse(call.func.value)
        if base is None:
            return
        if isinstance(follower, ast.Try) \
                and _releases_in_finally(follower, base):
            return
        self._report(
            "XIC503",
            f"{base}.{call.func.attr}() is not followed by a "
            "try/finally that releases it",
            statement, subject=base,
            hint="use a 'with' block, or follow the acquire with "
                 "try: ... finally: release")

    # -- XIC504 -----------------------------------------------------------

    def _check_blocking_call(self, node: ast.Call) -> None:
        if not self._holds_major():
            return
        target = _unparse(node.func)
        if target is None:
            return
        blocking = (
            target in _BLOCKING_EXACT
            or target.endswith(_BLOCKING_SUFFIXES)
            or target.startswith(_BLOCKING_PREFIXES))
        foreign_wait = False
        if not blocking and target.endswith(".wait"):
            base = target[: -len(".wait")]
            foreign_wait = base not in self.held
        if not blocking and not foreign_wait:
            return
        holding = next(name for name in self.held_canonical
                       if name in _MAJOR_LOCKS)
        kind = "a wait on a foreign condition" if foreign_wait \
            else f"blocking call {target}()"
        self._report(
            "XIC504",
            f"{kind} while holding the {holding!r} lock",
            node, subject=target,
            hint="move the blocking work outside the locked scope")


def _releases_in_finally(statement: ast.Try, base: str) -> bool:
    for node in ast.walk(ast.Module(body=statement.finalbody,
                                    type_ignores=[])):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr.startswith("release") \
                and _unparse(node.func.value) == base:
            return True
    return False


def _unparse(node: "ast.expr | None") -> "str | None":
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return None
