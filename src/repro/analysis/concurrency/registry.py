"""Static lock registry: what the annotations declare, per module.

:func:`scan_paths` parses every ``.py`` file under the given paths and
builds a :class:`Registry` of the lock-discipline declarations the
checker consumes:

* classes decorated with ``@guarded_by(lock, *fields)``;
* lock *creation sites* — assignments of ``threading.Lock()`` /
  ``RLock()`` / ``Condition()``, :func:`...sanitizer.make_lock` /
  :func:`...make_rlock` (which carry the canonical rank name as their
  argument) and ``ReadWriteLock(...)`` — both ``self.attr = ...`` in
  methods and module-level globals;
* module globals tied to a lock by a trailing
  ``# guarded-by: LOCK_NAME`` comment on their defining assignment;
* per-line ``# lock: ignore`` suppressions.

Everything is collected purely from source text and AST — the scanned
modules are never imported, so the linter can run over broken or
import-cycle-heavy code, and over the fixture corpus, identically.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: call targets (dotted suffixes) that construct a lock object
_LOCK_CALLS = {
    "Lock", "RLock", "Condition",
    "threading.Lock", "threading.RLock", "threading.Condition",
}
_NAMED_LOCK_CALLS = {"make_lock", "make_rlock"}
_RWLOCK_CALLS = {"ReadWriteLock"}

_GUARDED_COMMENT = re.compile(
    r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_.]*)")
_IGNORE_COMMENT = re.compile(r"#\s*lock:\s*ignore\b")


@dataclass
class LockSite:
    """One lock creation site."""

    #: canonical rank name (from ``make_lock("...")``) or ``None``
    canonical: str | None
    file: str
    line: int
    #: owning class name, or ``None`` for a module-level global
    owner: str | None
    #: the ``self.<attr>`` attribute or global variable bound to it
    attr: str


@dataclass
class ClassInfo:
    name: str
    file: str
    line: int
    #: guarded field → lock expression (``"self._lock"``)
    guards: dict[str, str] = field(default_factory=dict)
    #: lock attribute name → creation site
    lock_attrs: dict[str, LockSite] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    path: str
    tree: ast.Module
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: global variable name → creation site
    global_locks: dict[str, LockSite] = field(default_factory=dict)
    #: guarded global variable → guarding lock variable (same module)
    guarded_globals: dict[str, str] = field(default_factory=dict)
    #: 1-based line numbers carrying ``# lock: ignore``
    ignore_lines: set[int] = field(default_factory=set)
    #: every lock expression referenced by a ``requires_lock`` in
    #: this module (counts as "coverage" for XIC505)
    requires_exprs: set[str] = field(default_factory=set)


@dataclass
class Registry:
    modules: list[ModuleInfo] = field(default_factory=list)
    #: guarded field name → [(class name, lock expression)]
    attr_guards: dict[str, list[tuple[str, str]]] = \
        field(default_factory=dict)
    #: lock attribute basename → creation sites (all classes)
    lock_attr_sites: dict[str, list[LockSite]] = \
        field(default_factory=dict)

    def unique_guard(self, attr: str) -> "tuple[str, str] | None":
        """(class, lock expr) when ``attr`` is guarded in exactly one
        class; ``None`` when unknown or ambiguous."""
        owners = self.attr_guards.get(attr, [])
        if len({expr for _, expr in owners}) == 1:
            return owners[0]
        return None

    def unique_lock_attr(self, attr: str) -> "LockSite | None":
        sites = self.lock_attr_sites.get(attr, [])
        canonicals = {canonical_of(site) for site in sites}
        if len(canonicals) == 1:
            return sites[0]
        return None


def canonical_of(site: LockSite) -> str:
    """The graph/rank name of a lock site.

    Named locks use their canonical rank name; anonymous ones get a
    stable ``<module stem>.<variable>`` pseudo-name (these participate
    in cycle detection but have no rank in ``LOCK_ORDER``).
    """
    if site.canonical is not None:
        return site.canonical
    return f"{Path(site.file).stem}.{site.attr}"


def iter_python_files(paths: "list[str]") -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def scan_paths(paths: "list[str]") -> Registry:
    registry = Registry()
    for path in iter_python_files(paths):
        module = _scan_module(path)
        if module is None:
            continue
        registry.modules.append(module)
        for cls in module.classes.values():
            for field_name, lock_expr in cls.guards.items():
                registry.attr_guards.setdefault(field_name, []).append(
                    (cls.name, lock_expr))
            for attr, site in cls.lock_attrs.items():
                registry.lock_attr_sites.setdefault(attr, []).append(
                    site)
    return registry


def _scan_module(path: Path) -> "ModuleInfo | None":
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    module = ModuleInfo(path=str(path), tree=tree)
    comment_guards = _scan_comments(source, module)
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            _collect_global_lock(node, module)
            _tie_guarded_global(node, comment_guards, module)
        elif isinstance(node, ast.ClassDef):
            module.classes[node.name] = _scan_class(node, module)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for expr in decorator_requires(node):
                module.requires_exprs.add(expr)
    return module


def _scan_comments(source: str, module: ModuleInfo) -> dict[int, str]:
    """Record ignore lines; return line → ``# guarded-by:`` lock name."""
    comment_guards: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _IGNORE_COMMENT.search(line):
            module.ignore_lines.add(lineno)
        match = _GUARDED_COMMENT.search(line)
        if match:
            comment_guards[lineno] = match.group(1)
    return comment_guards


def _tie_guarded_global(node: "ast.Assign | ast.AnnAssign",
                        comment_guards: dict[int, str],
                        module: ModuleInfo) -> None:
    """Bind a ``# guarded-by:`` comment anywhere in the assignment's
    line span (continuation lines included) to its target globals."""
    end = node.end_lineno or node.lineno
    lock_name = next(
        (comment_guards[lineno]
         for lineno in range(node.lineno, end + 1)
         if lineno in comment_guards), None)
    if lock_name is None:
        return
    targets = [node.target] if isinstance(node, ast.AnnAssign) \
        else node.targets
    for target in targets:
        if isinstance(target, ast.Name):
            module.guarded_globals[target.id] = lock_name


def _scan_class(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    info = ClassInfo(name=node.name, file=module.path, line=node.lineno)
    for decorator in node.decorator_list:
        parsed = _parse_guarded_by(decorator)
        if parsed is not None:
            lock_expr, fields = parsed
            for field_name in fields:
                info.guards[field_name] = lock_expr
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
            continue
        for statement in ast.walk(method):
            if isinstance(statement, ast.Assign):
                targets = statement.targets
                value = statement.value
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
                value = statement.value
            else:
                continue
            canonical = _lock_call(value)
            if canonical is _NOT_A_LOCK:
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    info.lock_attrs[target.attr] = LockSite(
                        canonical=canonical, file=module.path,
                        line=statement.lineno, owner=node.name,
                        attr=target.attr)
    return info


def _collect_global_lock(node: "ast.Assign | ast.AnnAssign",
                         module: ModuleInfo) -> None:
    value = node.value if isinstance(node, ast.AnnAssign) \
        else node.value
    canonical = _lock_call(value)
    if canonical is _NOT_A_LOCK:
        return
    targets = [node.target] if isinstance(node, ast.AnnAssign) \
        else node.targets
    for target in targets:
        if isinstance(target, ast.Name):
            module.global_locks[target.id] = LockSite(
                canonical=canonical, file=module.path,
                line=node.lineno, owner=None, attr=target.id)


#: sentinel: the inspected expression does not construct a lock
_NOT_A_LOCK = object()


def _lock_call(value: "ast.expr | None"):
    """``None``/name when ``value`` constructs a lock, else the
    :data:`_NOT_A_LOCK` sentinel."""
    if not isinstance(value, ast.Call):
        return _NOT_A_LOCK
    target = _dotted(value.func)
    if target is None:
        return _NOT_A_LOCK
    basename = target.rsplit(".", 1)[-1]
    if target in _LOCK_CALLS:
        return None
    if basename in _NAMED_LOCK_CALLS:
        if value.args and isinstance(value.args[0], ast.Constant) \
                and isinstance(value.args[0].value, str):
            return value.args[0].value
        return None
    if basename in _RWLOCK_CALLS:
        for keyword in value.keywords:
            if keyword.arg == "name" \
                    and isinstance(keyword.value, ast.Constant):
                return str(keyword.value.value)
        return "service.store"
    return _NOT_A_LOCK


def _dotted(node: ast.expr) -> "str | None":
    """``a.b.c`` for plain dotted names, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _parse_guarded_by(
        decorator: ast.expr) -> "tuple[str, list[str]] | None":
    if not isinstance(decorator, ast.Call):
        return None
    target = _dotted(decorator.func)
    if target is None or target.rsplit(".", 1)[-1] != "guarded_by":
        return None
    strings = [argument.value for argument in decorator.args
               if isinstance(argument, ast.Constant)
               and isinstance(argument.value, str)]
    if len(strings) < 2:
        return None
    return strings[0], strings[1:]


def decorator_requires(
        node: "ast.FunctionDef | ast.AsyncFunctionDef") -> list[str]:
    """The lock expressions of ``@requires_lock(...)`` decorators."""
    held: list[str] = []
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        target = _dotted(decorator.func)
        if target is None \
                or target.rsplit(".", 1)[-1] != "requires_lock":
            continue
        for argument in decorator.args:
            if isinstance(argument, ast.Constant) \
                    and isinstance(argument.value, str):
                held.append(argument.value)
    return held
