"""Update-pattern analysis against the DTDs (codes ``XIC4xx``).

The paper's design-time step analyzes an update *pattern* once and
reuses the simplified checks for every matching concrete update.  This
pass vets the pattern itself before any simplification happens:

* ``XIC401`` — a fragment value parameter cannot be typed against the
  DTD: an attribute nobody declares, or character data where the
  content model is element-only;
* ``XIC402`` — the pattern matches no DTD-valid update at all: an
  undeclared fragment element, a child the parent's content model
  forbids, a fragment that violates its own content models, or a
  missing required attribute (the post-update document could never
  validate);
* ``XIC403`` — a pattern/constraint pair whose optimized check is
  *always violated*: every update matching the pattern breaks the
  constraint (factory only; computed where ``OptimizedCheck`` lives);
* ``XIC404`` — a pattern/constraint pair that fell back to brute force
  (informational; factory only).
"""

from __future__ import annotations

from repro.analysis.diagnostic import Diagnostic, make_diagnostic
from repro.analysis.satisfiability import DTDView
from repro.errors import XUpdateError
from repro.relational.schema import RelationalSchema
from repro.xtree.node import Element
from repro.xupdate.analyze import fragment_elements, insertion_parent_tag
from repro.xupdate.parser import InsertOperation, Operation, RemoveOperation


def pattern_diagnostics(name: str, operation: Operation,
                        schema: RelationalSchema, view: DTDView,
                        source: str | None = None) -> list[Diagnostic]:
    """DTD diagnostics for one update operation/pattern."""
    if isinstance(operation, RemoveOperation):
        return []  # deletions reference existing nodes only
    assert isinstance(operation, InsertOperation)
    diagnostics: list[Diagnostic] = []
    try:
        parent_tag = insertion_parent_tag(operation, schema)
    except XUpdateError as error:
        diagnostics.append(make_diagnostic(
            "XIC402", f"cannot type the insertion point: {error}",
            subject=name, source=source,
            hint="point the select at a concrete element type"))
        return diagnostics
    if not view.declares(parent_tag):
        diagnostics.append(make_diagnostic(
            "XIC402",
            f"insertion parent <{parent_tag}> is not declared in any DTD",
            subject=name, source=source))
        return diagnostics
    top_level = [node for node in operation.content
                 if isinstance(node, Element)]
    for element in top_level:
        if view.declares(element.tag) \
                and element.tag not in view.children(parent_tag):
            diagnostics.append(make_diagnostic(
                "XIC402",
                f"<{element.tag}> cannot be inserted under "
                f"<{parent_tag}>: the content model does not allow it",
                subject=name, source=source,
                hint=f"children of <{parent_tag}>: "
                     + (", ".join(sorted(view.children(parent_tag)))
                        or "none")))
    for element in fragment_elements(operation):
        diagnostics.extend(_element_diagnostics(name, element, view,
                                                source))
    return diagnostics


def _element_diagnostics(name: str, element: Element, view: DTDView,
                         source: str | None) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    tag = element.tag
    if not view.declares(tag):
        diagnostics.append(make_diagnostic(
            "XIC402",
            f"fragment element <{tag}> is not declared in any DTD",
            subject=name, source=source,
            hint="fix the tag or extend the DTD"))
        return diagnostics  # nothing below is checkable without a decl
    child_tags = [child.tag for child in element.element_children()]
    if not any(dtd.declares(tag) and dtd.content_matches(tag, child_tags)
               for dtd in view.dtds):
        listed = ", ".join(f"<{child}>" for child in child_tags) or "none"
        diagnostics.append(make_diagnostic(
            "XIC402",
            f"fragment element <{tag}> violates its content model "
            f"(children: {listed})",
            subject=name, source=source))
    if element.text().strip() and not view.allows_text(tag):
        diagnostics.append(make_diagnostic(
            "XIC401",
            f"character data inside <{tag}> cannot be typed: its "
            "content model is element-only in every DTD",
            subject=name, source=source,
            hint="move the text into a declared PCDATA child"))
    for attribute in sorted(element.attributes):
        if not view.has_attribute(tag, attribute):
            diagnostics.append(make_diagnostic(
                "XIC401",
                f"attribute {attribute!r} of fragment element <{tag}> "
                "is not declared in any DTD; its value parameter "
                "cannot be typed",
                subject=name, source=source,
                hint=f"declare {attribute!r} in an <!ATTLIST {tag} ...>"))
    for dtd in view.dtds:
        if not dtd.declares(tag):
            continue
        for definition in dtd.attribute_defs(tag):
            if definition.required \
                    and definition.name not in element.attributes:
                diagnostics.append(make_diagnostic(
                    "XIC402",
                    f"fragment element <{tag}> misses required "
                    f"attribute {definition.name!r}; the updated "
                    "document could never validate",
                    subject=name, source=source))
        break
    return diagnostics


def always_violated_diagnostic(pattern_name: str,
                               constraint_name: str) -> Diagnostic:
    """``XIC403``: every update matching the pattern breaks the constraint."""
    return make_diagnostic(
        "XIC403",
        f"every update matching pattern {pattern_name!r} violates "
        f"constraint {constraint_name!r}: the optimized check reduced "
        "to a contradiction",
        subject=pattern_name,
        hint="such updates can be rejected without consulting the "
             "document at all")


def brute_force_diagnostic(pattern_name: str, constraint_name: str,
                           reason: str) -> Diagnostic:
    """``XIC404``: the pair fell back to full re-checking."""
    return make_diagnostic(
        "XIC404",
        f"pattern {pattern_name!r} × constraint {constraint_name!r} "
        f"is checked by brute force: {reason}",
        subject=pattern_name)
