"""The constraint linter: run every analysis pass with error recovery.

:func:`lint_sources` takes raw DTD / constraint / view / update-pattern
texts — the same inputs :class:`repro.core.schema.ConstraintSchema`
accepts — and produces a :class:`LintReport` instead of raising on the
first problem: a parse or compile failure of one constraint becomes a
diagnostic (``XIC001``/``XIC002``) and the remaining constraints are
still analyzed.  This module deliberately does not import ``repro.core``
(which itself runs these passes at schema-compile time); it drives the
parsers and compilers directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.diagnostic import (
    ERROR,
    WARNING,
    Diagnostic,
    make_diagnostic,
    max_severity,
)
from repro.analysis.patterns import pattern_diagnostics
from repro.analysis.redundancy import redundancy_diagnostics
from repro.analysis.safety import constraint_safety_diagnostics
from repro.analysis.satisfiability import (
    DTDView,
    constraint_path_diagnostics,
    denial_satisfiability,
)
from repro.datalog.denial import Denial
from repro.errors import (
    CompilationError,
    DTDError,
    SchemaError,
    XPathLogError,
    XUpdateError,
)
from repro.relational.schema import RelationalSchema
from repro.xpathlog.compile import (
    CompiledView,
    compile_constraint,
    compile_rule,
)
from repro.xpathlog.parser import parse_constraint, parse_rule
from repro.xtree.dtd import DTD, parse_dtd
from repro.xupdate.parser import parse_modifications


@dataclass
class LintReport:
    """Everything the linter found, plus rendering helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: names of constraints all of whose denials are dead checks
    dead_constraints: list[str] = field(default_factory=list)
    #: names of constraints that parsed and compiled
    compiled_constraints: list[str] = field(default_factory=list)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def max_severity(self) -> str | None:
        return max_severity(self.diagnostics)

    def count_at_least(self, severity: str) -> int:
        return sum(1 for diagnostic in self.diagnostics
                   if diagnostic.is_at_least(severity))

    def codes(self) -> list[str]:
        return [diagnostic.code for diagnostic in self.diagnostics]

    def render_text(self) -> str:
        if not self.diagnostics:
            lines = ["clean: no diagnostics"]
        else:
            lines = [diagnostic.render() for diagnostic in self.diagnostics]
            errors = self.count_at_least(ERROR)
            warnings = self.count_at_least(WARNING) - errors
            lines.append(
                f"{len(self.diagnostics)} diagnostic(s): "
                f"{errors} error(s), {warnings} warning(s)")
        if self.dead_constraints:
            lines.append("dead constraints (skippable at run time): "
                         + ", ".join(self.dead_constraints))
        return "\n".join(lines)

    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Diagnostics in stable (file, code, location) order.

        The deterministic order makes JSON output and CI annotation
        diffs stable across runs regardless of pass scheduling.
        """
        return sorted(
            self.diagnostics,
            key=lambda d: (d.file or "", d.code, d.line or 0,
                           d.subject or "", d.message))

    def to_json(self) -> str:
        return json.dumps({
            "diagnostics": [d.to_dict()
                            for d in self.sorted_diagnostics()],
            "dead_constraints": self.dead_constraints,
            "compiled_constraints": self.compiled_constraints,
            "max_severity": self.max_severity(),
        }, indent=2)

    def render_github(self) -> str:
        """GitHub Actions workflow-annotation lines (one per finding).

        ``::error``/``::warning``/``::notice`` commands with ``file``/
        ``line`` properties where the diagnostic carries a location, so
        findings surface inline on pull-request diffs.
        """
        lines = []
        for diagnostic in self.sorted_diagnostics():
            level = {ERROR: "error", WARNING: "warning"}.get(
                diagnostic.severity, "notice")
            properties = [f"title={diagnostic.code}"]
            if diagnostic.file is not None:
                properties.insert(0, f"file={diagnostic.file}")
                properties.insert(1, f"line={diagnostic.line or 1}")
            message = diagnostic.message
            if diagnostic.subject:
                message = f"[{diagnostic.subject}] {message}"
            lines.append(
                f"::{level} {','.join(properties)}::{message}")
        return "\n".join(lines)


def lint_sources(dtds: "list[str | DTD]",
                 constraints: list[str],
                 names: list[str] | None = None,
                 views: list[str] | None = None,
                 patterns: list[str] | None = None) -> LintReport:
    """Run all analysis passes over raw schema sources.

    ``patterns`` are XUpdate modification documents (one string each);
    each named ``P1``, ``P2``, ... in order.
    """
    report = LintReport()
    try:
        parsed_dtds = [dtd if isinstance(dtd, DTD) else parse_dtd(dtd)
                       for dtd in dtds]
    except DTDError as error:
        report.extend([make_diagnostic(
            "XIC001", f"DTD does not parse: {error}", subject="<dtd>")])
        return report
    try:
        relational = RelationalSchema.from_dtds(parsed_dtds)
    except SchemaError as error:
        report.extend([make_diagnostic(
            "XIC002", f"DTDs have no relational mapping: {error}",
            subject="<dtd>")])
        return report
    view = DTDView(parsed_dtds)

    compiled_views = _lint_views(views or [], relational, report)
    compiled = _lint_constraints(constraints, names, relational, view,
                                 compiled_views, report)
    report.extend(redundancy_diagnostics(
        [(name, source, denials) for name, source, denials in compiled]))
    _lint_patterns(patterns or [], relational, view, report)
    return report


def _lint_views(views: list[str], relational: RelationalSchema,
                report: LintReport) -> dict[str, CompiledView]:
    compiled: dict[str, CompiledView] = {}
    for index, text in enumerate(views):
        label = f"view {index + 1}"
        try:
            rule = parse_rule(text)
        except XPathLogError as error:
            report.extend([make_diagnostic(
                "XIC001", f"{label} does not parse: {error}",
                subject=label, source=text)])
            continue
        try:
            compiled[rule.head_name] = compile_rule(rule, relational,
                                                    compiled)
        except (CompilationError, SchemaError) as error:
            report.extend([make_diagnostic(
                "XIC002", f"view {rule.head_name!r} does not compile: "
                f"{error}", subject=rule.head_name, source=text)])
    return compiled


def _lint_constraints(
        constraints: list[str], names: list[str] | None,
        relational: RelationalSchema, view: DTDView,
        compiled_views: dict[str, CompiledView],
        report: LintReport) -> list[tuple[str, str | None, list[Denial]]]:
    compiled: list[tuple[str, str | None, list[Denial]]] = []
    for index, text in enumerate(constraints):
        name = names[index] if names and index < len(names) \
            else f"C{index + 1}"
        try:
            constraint = parse_constraint(text)
        except XPathLogError as error:
            report.extend([make_diagnostic(
                "XIC001", f"constraint {name!r} does not parse: {error}",
                subject=name, source=text)])
            continue
        path_diagnostics = constraint_path_diagnostics(
            constraint, view, name)
        report.extend(path_diagnostics)
        try:
            denials = compile_constraint(constraint, relational,
                                         compiled_views)
        except (CompilationError, SchemaError) as error:
            if not path_diagnostics:
                # an AST-level finding already explains the failure;
                # only unexplained compile errors get their own entry
                code = getattr(error, "code", None) or "XIC002"
                report.extend([make_diagnostic(
                    code, f"constraint {name!r} does not compile: "
                    f"{error}", subject=name, source=text)])
            continue
        report.compiled_constraints.append(name)
        report.extend(constraint_safety_diagnostics(
            name, text, denials))
        dead_diagnostics, dead = denial_satisfiability(
            name, text, denials, relational, view)
        report.extend(dead_diagnostics)
        if dead and len(dead) == len(denials):
            report.dead_constraints.append(name)
        compiled.append((name, text, denials))
    return compiled


def _lint_patterns(patterns: list[str], relational: RelationalSchema,
                   view: DTDView, report: LintReport) -> None:
    for index, text in enumerate(patterns):
        name = f"P{index + 1}"
        try:
            operations = parse_modifications(text)
        except XUpdateError as error:
            report.extend([make_diagnostic(
                "XIC001", f"pattern {name!r} does not parse: {error}",
                subject=name, source=text)])
            continue
        for operation in operations:
            report.extend(pattern_diagnostics(
                name, operation, relational, view, source=text))
