"""Redundancy analysis between compiled constraints (codes ``XIC3xx``).

A constraint with several denials (one per DNF disjunct) is *implied* by
another when every one of its denials is θ-subsumed by some denial of
the other: any violation it would catch, the other already catches.
Checking the implied constraint is then pure overhead.

* ``XIC301`` — constraint implied by (strictly weaker than) another;
* ``XIC302`` — two constraints are equivalent (they imply each other;
  reported once, on the later of the pair).
"""

from __future__ import annotations

from repro.analysis.diagnostic import Diagnostic, make_diagnostic
from repro.datalog.denial import Denial
from repro.datalog.subsume import subsumes


def constraint_implies(implying: list[Denial],
                       implied: list[Denial]) -> bool:
    """Every denial of ``implied`` is subsumed by one of ``implying``."""
    return all(
        any(subsumes(general, specific) for general in implying)
        for specific in implied)


def redundancy_diagnostics(
        compiled: list[tuple[str, str | None, list[Denial]]]
) -> list[Diagnostic]:
    """Pairwise redundancy report over ``(name, source, denials)`` triples.

    Quadratic in the number of constraints, but each subsumption test is
    cheap and constraint sets are small; the pass runs at compile time
    only.
    """
    diagnostics: list[Diagnostic] = []
    for second in range(len(compiled)):
        name_b, source_b, denials_b = compiled[second]
        for first in range(second):
            name_a, _, denials_a = compiled[first]
            a_implies_b = constraint_implies(denials_a, denials_b)
            b_implies_a = constraint_implies(denials_b, denials_a)
            if a_implies_b and b_implies_a:
                diagnostics.append(make_diagnostic(
                    "XIC302",
                    f"constraint {name_b!r} is equivalent to "
                    f"{name_a!r}: they catch exactly the same violations",
                    subject=name_b, source=source_b,
                    hint=f"drop {name_b!r}; keeping both doubles the "
                         "checking work"))
            elif a_implies_b:
                diagnostics.append(make_diagnostic(
                    "XIC301",
                    f"constraint {name_b!r} is implied by {name_a!r}: "
                    f"every violation of {name_b!r} already violates "
                    f"{name_a!r}",
                    subject=name_b, source=source_b,
                    hint=f"drop {name_b!r} or tighten it"))
            elif b_implies_a:
                diagnostics.append(make_diagnostic(
                    "XIC301",
                    f"constraint {name_a!r} is implied by {name_b!r}: "
                    f"every violation of {name_a!r} already violates "
                    f"{name_b!r}",
                    subject=name_a, source=compiled[first][1],
                    hint=f"drop {name_a!r} or tighten it"))
    return diagnostics
