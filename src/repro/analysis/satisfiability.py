"""DTD-path satisfiability analysis (codes ``XIC1xx``).

Two layers, mirroring where each property is visible:

* :func:`constraint_path_diagnostics` walks the *XPathLog AST* of a
  constraint against the DTD content models: unknown element tags
  (``XIC101``), unknown attributes (``XIC102``), parent/child or
  descendant steps no DTD-valid document can take (``XIC103``) and
  ``text()`` steps over element-only content (``XIC104``).
* :func:`denial_satisfiability` inspects the *compiled Datalog denials*
  for contradictions with the DTD's occurrence bounds: a denial that
  requires more mutually distinct siblings than the parent's content
  model admits (``XIC105``) or pins an enumerated attribute to a value
  outside its enumeration (``XIC106``) can never be violated by a
  DTD-valid document — it is a *dead check* the run-time strategies
  skip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostic import Diagnostic, make_diagnostic, span_of
from repro.datalog.atoms import Atom, Comparison, comparison_truth
from repro.datalog.denial import Denial
from repro.datalog.subst import Substitution
from repro.datalog.terms import Constant, Term, Variable
from repro.relational.schema import RelationalSchema
from repro.xpathlog.ast import (
    AggregateComparison,
    AndCondition,
    ComparisonCondition,
    Condition,
    Constraint,
    NotCondition,
    OrCondition,
    PathCondition,
    PathExpression,
    PathOperand,
    PredicateCall,
)
from repro.xtree.dtd import DTD, UNBOUNDED


class DTDView:
    """Union view over the schema's DTDs, with a descendant closure."""

    def __init__(self, dtds: "list[DTD] | tuple[DTD, ...]") -> None:
        self.dtds = list(dtds)
        self._children: dict[str, set[str]] = {}
        self._tags: set[str] = set()
        self._roots: set[str] = set()
        for dtd in self.dtds:
            self._tags |= set(dtd.elements)
            self._roots |= set(dtd.root_candidates())
            for tag in dtd.elements:
                children = self._children.setdefault(tag, set())
                children |= set(dtd.child_cardinalities(tag))
        self._descendants: dict[str, set[str]] = {}

    def declares(self, tag: str) -> bool:
        return tag in self._tags

    def roots(self) -> set[str]:
        return self._roots

    def children(self, tag: str) -> set[str]:
        return self._children.get(tag, set())

    def parents(self, tag: str) -> set[str]:
        return {parent for parent, children in self._children.items()
                if tag in children}

    def descendants(self, tag: str) -> set[str]:
        if tag not in self._descendants:
            seen: set[str] = set()
            stack = list(self.children(tag))
            while stack:
                child = stack.pop()
                if child not in seen:
                    seen.add(child)
                    stack.extend(self.children(child))
            self._descendants[tag] = seen
        return self._descendants[tag]

    def allows_text(self, tag: str) -> bool:
        return any(dtd.declares(tag) and dtd.allows_text(tag)
                   for dtd in self.dtds)

    def has_attribute(self, tag: str, name: str) -> bool:
        return any(dtd.attribute_def(tag, name) is not None
                   for dtd in self.dtds)

    def max_occurs(self, parent: str, child: str) -> int | None:
        """Largest occurrence bound of ``child`` under ``parent``.

        ``UNBOUNDED`` (``None``) when any DTD allows arbitrarily many;
        0 when no DTD allows the edge at all.
        """
        best = 0
        for dtd in self.dtds:
            if not dtd.declares(parent):
                continue
            bounds = dtd.child_cardinalities(parent).get(child)
            if bounds is None:
                continue
            high = bounds[1]
            if high is UNBOUNDED:
                return UNBOUNDED
            best = max(best, high)
        return best


@dataclass
class _PathResult:
    """Where a path walk ended: at nodes, at a value, or nowhere known."""

    kind: str  # "node" | "root" | "value" | "unknown"
    tags: set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# AST-level pass
# ---------------------------------------------------------------------------

class _PathChecker:
    def __init__(self, view: DTDView, subject: str,
                 source: str | None) -> None:
        self.view = view
        self.subject = subject
        self.source = source
        self.diagnostics: list[Diagnostic] = []

    def report(self, code: str, message: str, needle: str,
               hint: str | None = None) -> None:
        self.diagnostics.append(make_diagnostic(
            code, message, subject=self.subject, source=self.source,
            span=span_of(self.source, needle), hint=hint))

    # -- conditions ----------------------------------------------------------

    def check_condition(self, condition: Condition,
                        context: _PathResult | None) -> None:
        if isinstance(condition, PathCondition):
            self.check_path(condition.path, context)
        elif isinstance(condition, ComparisonCondition):
            for operand in (condition.left, condition.right):
                if isinstance(operand, PathOperand):
                    self.check_path(operand.path, context)
        elif isinstance(condition, AggregateComparison):
            self.check_path(condition.path, None)
        elif isinstance(condition, NotCondition):
            self.check_condition(condition.item, context)
        elif isinstance(condition, (AndCondition, OrCondition)):
            for item in condition.items:
                self.check_condition(item, context)
        elif isinstance(condition, PredicateCall):
            pass  # view bodies are linted where the view is defined
        else:  # pragma: no cover - exhaustive over the AST
            raise TypeError(f"unknown condition kind: {condition!r}")

    # -- paths ----------------------------------------------------------------

    def check_path(self, path: PathExpression,
                   context: _PathResult | None) -> _PathResult:
        if path.absolute or context is None:
            current = _PathResult("root")
        else:
            current = context
        for step, descendant in zip(path.steps, path.descendant_flags):
            current = self.check_step(step, descendant, current)
            for qualifier in step.qualifiers:
                self.check_condition(qualifier, current)
        return current

    def check_step(self, step, descendant: bool,
                   context: _PathResult) -> _PathResult:
        if context.kind == "unknown":
            return context
        if step.axis in ("child", "descendant"):
            return self.check_navigation(step.nodetest or "", descendant,
                                         context)
        if step.axis == "attribute":
            return self.check_attribute(step.nodetest or "", context)
        if step.axis == "text":
            return self.check_text(context)
        if step.axis == "position":
            return _PathResult("value")
        if step.axis == "parent":
            parents: set[str] = set()
            for tag in context.tags:
                parents |= self.view.parents(tag)
            if parents:
                return _PathResult("node", parents)
            return _PathResult("unknown")
        return _PathResult("unknown")

    def check_navigation(self, tag: str, descendant: bool,
                         context: _PathResult) -> _PathResult:
        if not self.view.declares(tag):
            known = ", ".join(sorted(self.view._tags)) or "none"
            self.report(
                "XIC101",
                f"element tag {tag!r} is not declared in any DTD",
                tag, hint=f"declared tags: {known}")
            return _PathResult("unknown")
        if context.kind == "value":
            return _PathResult("unknown")  # compile rejects this shape
        if context.kind == "root":
            return _PathResult("node", {tag})
        reachable = any(
            tag in (self.view.descendants(source) if descendant
                    else self.view.children(source))
            for source in context.tags)
        if not reachable:
            sources = "/".join(sorted(context.tags))
            relation = "a descendant" if descendant else "a child"
            self.report(
                "XIC103",
                f"{tag!r} can never be {relation} of {sources!r} in any "
                "DTD-valid document", tag,
                hint=f"children of {sources!r}: "
                     + (", ".join(sorted(set().union(*(
                         self.view.children(s) for s in context.tags))))
                        or "none"))
        return _PathResult("node", {tag})

    def check_attribute(self, name: str,
                        context: _PathResult) -> _PathResult:
        if context.kind == "node" and context.tags and not any(
                self.view.has_attribute(tag, name)
                for tag in context.tags):
            tags = "/".join(sorted(context.tags))
            self.report(
                "XIC102",
                f"attribute {name!r} is not declared on {tags!r}",
                "@" + name,
                hint=f"add an <!ATTLIST {tags} {name} ...> declaration "
                     "or fix the attribute name")
        return _PathResult("value")

    def check_text(self, context: _PathResult) -> _PathResult:
        if context.kind == "node" and context.tags and not any(
                self.view.allows_text(tag) for tag in context.tags):
            tags = "/".join(sorted(context.tags))
            self.report(
                "XIC104",
                f"text() selects nothing: {tags!r} has element-only "
                "content in every DTD", "text()",
                hint="compare an inlined child or attribute instead")
        return _PathResult("value")


def constraint_path_diagnostics(constraint: Constraint, view: DTDView,
                                name: str) -> list[Diagnostic]:
    """AST-level DTD satisfiability diagnostics for one constraint."""
    checker = _PathChecker(view, name, constraint.source)
    checker.check_condition(constraint.body, None)
    return checker.diagnostics


# ---------------------------------------------------------------------------
# Denial-level pass (dead checks)
# ---------------------------------------------------------------------------

def denial_satisfiability(
        name: str, source: str | None, denials: list[Denial],
        relational: RelationalSchema,
        view: DTDView) -> tuple[list[Diagnostic], set[int]]:
    """Dead-check diagnostics plus the indices of dead denials.

    A constraint whose denials are *all* dead can be skipped entirely by
    the run-time checkers (the documents are DTD-valid by contract, so
    the denial body is unsatisfiable).
    """
    diagnostics: list[Diagnostic] = []
    dead: set[int] = set()
    for index, denial in enumerate(denials):
        findings = _denial_findings(denial, relational, view)
        for code, message, hint in findings:
            diagnostics.append(make_diagnostic(
                code, f"{message} (denial {index + 1} of {len(denials)}: "
                      f"{denial})",
                subject=name, source=source, hint=hint))
        if findings:
            dead.add(index)
    return diagnostics, dead


def _denial_findings(denial: Denial, relational: RelationalSchema,
                     view: DTDView) -> list[tuple[str, str, str]]:
    findings = _enum_findings(denial, relational)
    findings.extend(_cardinality_findings(denial, relational, view))
    return findings


def _enum_findings(denial: Denial,
                   relational: RelationalSchema) -> list[tuple[str, str, str]]:
    """``XIC106``: an enumerated attribute pinned outside its enumeration."""
    findings: list[tuple[str, str, str]] = []
    for atom in denial.atoms():
        if not relational.has_predicate(atom.predicate):
            continue
        predicate = relational.predicate_for(atom.predicate)
        for column_index, column in enumerate(predicate.columns):
            if column.kind != "attribute" or column.source is None:
                continue
            argument = atom.args[column_index]
            if not isinstance(argument, Constant) \
                    or argument.value is None:
                continue
            for dtd in relational.dtds:
                definition = dtd.attribute_def(atom.predicate, column.source)
                if definition is None or definition.att_type != "enum":
                    continue
                if argument.value not in definition.enum_values:
                    findings.append((
                        "XIC106",
                        f"attribute {column.source!r} of "
                        f"<{atom.predicate}> is compared to "
                        f"{argument.value!r}, outside its enumeration "
                        f"{definition.enum_values}",
                        "this check can never fire on a DTD-valid "
                        "document; fix the value or widen the "
                        "enumeration"))
                break
    return findings


def _cardinality_findings(
        denial: Denial, relational: RelationalSchema,
        view: DTDView) -> list[tuple[str, str, str]]:
    """``XIC105``: more distinct siblings required than the DTD allows."""
    findings: list[tuple[str, str, str]] = []
    comparisons = list(denial.comparisons())
    groups = _sibling_groups(denial, relational)
    for (predicate, _), atoms in groups.items():
        if len(atoms) < 2:
            continue
        required = _distinct_clique(atoms, comparisons)
        if required < 2:
            continue
        parent_tags = _possible_parent_tags(atoms, denial, relational)
        if not parent_tags:
            continue
        bounds = [view.max_occurs(parent, predicate)
                  for parent in parent_tags]
        if any(bound is UNBOUNDED for bound in bounds):
            continue
        maximum = max(bound for bound in bounds)  # type: ignore[type-var]
        if required > maximum:
            parents = "/".join(sorted(parent_tags))
            findings.append((
                "XIC105",
                f"the body requires {required} distinct <{predicate}> "
                f"children under one <{parents}>, but the DTD allows at "
                f"most {maximum}",
                "this check can never fire on a DTD-valid document; "
                "drop it or relax the content model"))
    return findings


def _sibling_groups(denial: Denial, relational: RelationalSchema
                    ) -> dict[tuple[str, object], list[Atom]]:
    """Atoms that provably describe children of one concrete parent node.

    Two atoms land in one group when they share the same parent term, or
    when their node type can only occur under document roots — a root
    element is unique per document, so all its children are siblings.
    """
    groups: dict[tuple[str, object], list[Atom]] = {}
    for atom in denial.atoms():
        if not relational.has_predicate(atom.predicate):
            continue
        parents = relational.parents_of(atom.predicate)
        if parents and all(relational.is_root(parent)
                           for parent in parents):
            key: tuple[str, object] = (atom.predicate, "<root>")
        else:
            key = (atom.predicate, atom.args[2])
        groups.setdefault(key, []).append(atom)
    return groups


def _distinct_clique(atoms: list[Atom],
                     comparisons: list[Comparison]) -> int:
    """Size of the largest set of atoms that must denote distinct nodes."""
    must_differ = [
        [a is not b and _forced_distinct(a, b, comparisons) for b in atoms]
        for a in atoms
    ]
    best = 1
    count = len(atoms)
    for mask in range(1, 1 << count):
        members = [i for i in range(count) if mask >> i & 1]
        if len(members) <= best:
            continue
        if all(must_differ[i][j]
               for i in members for j in members if i < j):
            best = len(members)
    return best


def _forced_distinct(left: Atom, right: Atom,
                     comparisons: list[Comparison]) -> bool:
    """True when ``left`` and ``right`` cannot denote the same node."""
    unifier = _unify_args(left, right)
    if unifier is None:
        return True
    substitution = Substitution(unifier)
    for comparison in comparisons:
        applied = substitution.apply_literal(comparison)
        assert isinstance(applied, Comparison)
        if comparison_truth(applied) is False:
            return True
    return False


def _unify_args(left: Atom, right: Atom) -> dict[Variable, Term] | None:
    """Most general unifier of two same-predicate atoms, or ``None``.

    Parameters are unknown constants: they unify with anything except a
    provably different value, so only distinct ground constants refute
    unification.  The result maps variables to their representative.
    """
    bindings: dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for first, second in zip(left.args, right.args):
        first, second = resolve(first), resolve(second)
        if first == second:
            continue
        if isinstance(first, Variable):
            bindings[first] = second
        elif isinstance(second, Variable):
            bindings[second] = first
        elif isinstance(first, Constant) and isinstance(second, Constant):
            return None
        # parameter vs constant/parameter: not provably distinct
    return {variable: resolve(variable) for variable in bindings}


def _possible_parent_tags(atoms: list[Atom], denial: Denial,
                          relational: RelationalSchema) -> set[str]:
    """Node types the shared parent of a sibling group can have."""
    parent_term = atoms[0].args[2]
    for atom in denial.atoms():
        if atom in atoms:
            continue
        if atom.args[0] == parent_term \
                and relational.has_predicate(atom.predicate):
            return {atom.predicate}
    return set(relational.parents_of(atoms[0].predicate))
