"""Compile-time static analysis of constraint schemas.

The linter front door is :func:`repro.analysis.lint.lint_sources`; the
individual passes live in :mod:`~repro.analysis.satisfiability`
(``XIC1xx``), :mod:`~repro.analysis.safety` (``XIC2xx``),
:mod:`~repro.analysis.redundancy` (``XIC3xx``) and
:mod:`~repro.analysis.patterns` (``XIC4xx``).

Only the diagnostic model and the (dependency-light) safety pass are
re-exported here: ``repro.datalog.evaluate`` references the safety
codes lazily and must not drag the whole analysis stack — let alone
``repro.core`` — into its import graph.
"""

from repro.analysis.diagnostic import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    make_diagnostic,
    max_severity,
)
from repro.analysis.safety import (
    UNSAFE_AGGREGATE,
    UNSAFE_COMPARISON,
    UNSAFE_NEGATION,
    bound_variables,
    denial_safety_issues,
)

__all__ = [
    "CODES",
    "ERROR",
    "INFO",
    "WARNING",
    "Diagnostic",
    "make_diagnostic",
    "max_severity",
    "UNSAFE_AGGREGATE",
    "UNSAFE_COMPARISON",
    "UNSAFE_NEGATION",
    "bound_variables",
    "denial_safety_issues",
]
