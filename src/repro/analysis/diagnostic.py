"""The structured diagnostic model of the constraint linter.

Every finding of the compile-time analysis passes is a
:class:`Diagnostic`: a stable ``XICnnn`` code, a severity, the subject
it concerns (a constraint or update-pattern name), a best-effort source
span, and a fix hint.  Codes are grouped by pass:

* ``XIC0xx`` — input problems (parse/compile failures);
* ``XIC1xx`` — DTD-path satisfiability (unknown names, impossible
  edges, dead checks);
* ``XIC2xx`` — Datalog safety / range restriction;
* ``XIC3xx`` — redundancy between constraints;
* ``XIC4xx`` — update-pattern analysis;
* ``XIC5xx`` — lock-discipline analysis of the codebase itself
  (``repro lint --concurrency``).

The catalogue with one example and fix per code lives in
``docs/diagnostics.md``; code/severity pairs are registered in
:data:`CODES` so that severities stay consistent across passes.
"""

from __future__ import annotations

from dataclasses import dataclass

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}

#: code → (default severity, short title)
CODES: dict[str, tuple[str, str]] = {
    "XIC001": (ERROR, "input does not parse"),
    "XIC002": (ERROR, "constraint does not compile against the schema"),
    "XIC101": (ERROR, "unknown element tag"),
    "XIC102": (ERROR, "unknown attribute"),
    "XIC103": (ERROR, "impossible parent/child step"),
    "XIC104": (ERROR, "no character data at this step"),
    "XIC105": (WARNING, "dead check: sibling cardinality contradiction"),
    "XIC106": (WARNING, "dead check: value outside attribute enumeration"),
    "XIC201": (ERROR, "unsafe variable in a comparison"),
    "XIC202": (ERROR, "unsafe variable shared with a negation"),
    "XIC203": (ERROR, "unsafe aggregate condition"),
    "XIC301": (WARNING, "constraint implied by another constraint"),
    "XIC302": (WARNING, "constraint equivalent to another constraint"),
    "XIC401": (ERROR, "untypable update-pattern parameter"),
    "XIC402": (ERROR, "pattern matches no DTD-valid update"),
    "XIC403": (WARNING, "pattern always violates a constraint"),
    "XIC404": (INFO, "pattern/constraint pair needs brute force"),
    "XIC501": (ERROR, "guarded attribute accessed outside its lock"),
    "XIC502": (ERROR, "lock acquisition order violation or cycle"),
    "XIC503": (ERROR, "lock acquired without with/try-finally"),
    "XIC504": (WARNING, "blocking call while holding a major lock"),
    "XIC505": (ERROR, "lock has no guarded_by coverage"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analysis pass."""

    code: str
    severity: str
    message: str
    #: name of the constraint or update pattern concerned, if any
    subject: str | None = None
    #: the source text the finding refers to (constraint / pattern text)
    source: str | None = None
    #: (start, end) character offsets into ``source``, when locatable
    span: tuple[int, int] | None = None
    hint: str | None = None
    #: file path and 1-based line, set by file-oriented passes (XIC5xx)
    file: str | None = None
    line: int | None = None

    def is_at_least(self, severity: str) -> bool:
        return _SEVERITY_RANK[self.severity] >= _SEVERITY_RANK[severity]

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        payload: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.subject is not None:
            payload["subject"] = self.subject
        if self.source is not None:
            payload["source"] = self.source
        if self.span is not None:
            payload["span"] = list(self.span)
        if self.hint is not None:
            payload["hint"] = self.hint
        if self.file is not None:
            payload["file"] = self.file
        if self.line is not None:
            payload["line"] = self.line
        return payload

    def render(self) -> str:
        """Multi-line human-readable rendering."""
        subject = f" [{self.subject}]" if self.subject else ""
        location = ""
        if self.file is not None:
            location = f"{self.file}:{self.line or 0}: "
        lines = [f"{location}{self.code} {self.severity}{subject}: "
                 f"{self.message}"]
        if self.source is not None and self.span is not None:
            start, end = self.span
            line_start = self.source.rfind("\n", 0, start) + 1
            line_end = self.source.find("\n", start)
            if line_end == -1:
                line_end = len(self.source)
            snippet = self.source[line_start:line_end]
            caret_at = start - line_start
            width = max(1, min(end, line_end) - start)
            lines.append("    " + snippet)
            lines.append("    " + " " * caret_at + "^" * width)
        if self.hint is not None:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render().splitlines()[0]


def make_diagnostic(code: str, message: str, *, subject: str | None = None,
                    source: str | None = None,
                    span: tuple[int, int] | None = None,
                    hint: str | None = None,
                    severity: str | None = None,
                    file: str | None = None,
                    line: int | None = None) -> Diagnostic:
    """Build a diagnostic with the registered default severity."""
    if code not in CODES:
        raise ValueError(f"unregistered diagnostic code {code!r}")
    return Diagnostic(code, severity or CODES[code][0], message,
                      subject=subject, source=source, span=span, hint=hint,
                      file=file, line=line)


def span_of(source: str | None, needle: str) -> tuple[int, int] | None:
    """Best-effort source span: the first occurrence of ``needle``.

    The XPathLog AST does not carry token positions, so diagnostics
    locate the offending name textually; ``None`` when it cannot be
    found (e.g. the name was produced by normalization).
    """
    if not source or not needle:
        return None
    index = source.find(needle)
    if index == -1:
        return None
    return index, index + len(needle)


def max_severity(diagnostics: list[Diagnostic]) -> str | None:
    """The highest severity present, or ``None`` for an empty list."""
    if not diagnostics:
        return None
    return max(diagnostics,
               key=lambda d: _SEVERITY_RANK[d.severity]).severity
