"""Command-line interface: ``python -m repro <command>``.

A thin front-end over the library for shell use:

* ``describe`` — compile DTDs + constraints and print the design-time
  artifacts (relational schema, Datalog denials, simplified checks per
  registered pattern);
* ``check``    — verify documents against the constraints (full check);
* ``guard``    — apply an XUpdate file under integrity control and
  write the (possibly updated) documents back;
* ``shred``    — print the relational facts of a document;
* ``query``    — evaluate an XQuery expression over documents;
* ``lint``     — run the compile-time analysis passes and report
  ``XICnnn`` diagnostics (text or JSON) without touching documents;
* ``recover``  — rebuild a durable checking service from its state
  directory (snapshot + write-ahead log) and report what replay did;
* ``serve``    — run the networked sharded checking service: an
  asyncio HTTP front end routing requests by consistent hashing to N
  durable worker processes.

Constraints are given one per ``--constraint`` (inline text) or via
``--constraints-file`` (one denial per non-empty line; ``#`` comments;
a trailing ``\\`` continues the denial on the next line).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import BruteForceChecker, ConstraintSchema, IntegrityGuard
from repro.datalog.database import FactDatabase
from repro.errors import ReproError
from repro.relational.shredder import iter_facts
from repro.xquery.engine import evaluate_query
from repro.xquery.values import string_value
from repro.xtree import parse_document, serialize
from repro.xtree.node import Document


def _read(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _load_documents(paths: list[str]) -> list[Document]:
    return [parse_document(_read(path)) for path in paths]


def _parse_constraint_lines(text: str) -> list[str]:
    """One denial per logical line: ``#`` comments, ``\\`` continuation.

    A line ending in a backslash continues on the next physical line,
    so long denials can be wrapped; comment and blank lines are only
    recognized outside a continuation.
    """
    constraints: list[str] = []
    pending: str | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if pending is None:
            if not stripped or stripped.startswith("#"):
                continue
            current = stripped
        else:
            current = pending + " " + stripped
        if current.endswith("\\"):
            pending = current[:-1].strip()
        else:
            pending = None
            constraints.append(current)
    if pending:  # a dangling final continuation still counts
        constraints.append(pending)
    return constraints


def _load_constraints(args: argparse.Namespace,
                      required: bool = True) -> list[str]:
    constraints = list(args.constraint or [])
    if args.constraints_file:
        constraints.extend(
            _parse_constraint_lines(_read(args.constraints_file)))
    if not constraints and required:
        raise SystemExit("no constraints given "
                         "(use --constraint / --constraints-file)")
    return constraints


def _build_schema(args: argparse.Namespace) -> ConstraintSchema:
    dtds = [_read(path) for path in args.dtd]
    schema = ConstraintSchema(dtds, _load_constraints(args))
    for pattern_path in args.pattern or []:
        schema.register_pattern(_read(pattern_path))
    return schema


def _add_schema_arguments(parser: argparse.ArgumentParser,
                          dtd_required: bool = True) -> None:
    parser.add_argument("--dtd", action="append", required=dtd_required,
                        help="DTD file (repeatable)")
    parser.add_argument("--constraint", action="append",
                        help="XPathLog denial text (repeatable)")
    parser.add_argument("--constraints-file",
                        help="file with one XPathLog denial per line")
    parser.add_argument("--pattern", action="append",
                        help="XUpdate file registered as update pattern "
                             "(repeatable)")


def cmd_describe(args: argparse.Namespace) -> int:
    schema = _build_schema(args)
    print(schema.describe())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    schema = _build_schema(args)
    documents = _load_documents(args.document)
    violated = BruteForceChecker(schema, documents).check_only()
    if violated:
        print("INCONSISTENT; violated constraints: "
              + ", ".join(violated))
        return 1
    print("consistent")
    return 0


def cmd_guard(args: argparse.Namespace) -> int:
    schema = _build_schema(args)
    documents = _load_documents(args.document)
    guard = IntegrityGuard(schema, documents)
    decision = guard.try_execute(_read(args.update))
    if not decision.legal:
        print("REJECTED; violated constraints: "
              + ", ".join(decision.violated))
        return 1
    strategy = "optimized pre-check" if decision.optimized \
        else "brute-force fallback"
    print(f"accepted ({strategy})")
    if args.in_place:
        for path, document in zip(args.document, documents):
            Path(path).write_text(serialize(document, indent=2) + "\n",
                                  encoding="utf-8")
            print(f"wrote {path}")
    return 0


def cmd_shred(args: argparse.Namespace) -> int:
    schema = _build_schema(args) if args.constraint \
        or args.constraints_file else None
    if schema is None:
        from repro.relational.schema import RelationalSchema
        from repro.xtree.dtd import parse_dtd
        relational = RelationalSchema.from_dtds(
            [parse_dtd(_read(path)) for path in args.dtd])
    else:
        relational = schema.relational
    database = FactDatabase()
    for path in args.document:
        document = parse_document(_read(path))
        for predicate, row in iter_facts(document, relational):
            database.add(predicate, row)
    for predicate in sorted(database.predicates()):
        for row in database.rows(predicate):
            rendered = ", ".join(
                "null" if value is None else repr(value) for value in row)
            print(f"{predicate}({rendered})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostic import ERROR, WARNING
    from repro.analysis.lint import LintReport, lint_sources

    if not args.dtd and not args.concurrency:
        print("error: lint needs --dtd inputs, --concurrency paths, "
              "or both", file=sys.stderr)
        return 2
    if args.dtd:
        report = lint_sources(
            [_read(path) for path in args.dtd],
            _load_constraints(args, required=False),
            patterns=[_read(path) for path in args.pattern or []])
    else:
        report = LintReport()
    if args.concurrency:
        from repro.analysis.concurrency import concurrency_diagnostics

        report.extend(concurrency_diagnostics(
            args.path or ["src/repro"]))
    if args.format == "json":
        print(report.to_json())
    elif args.format == "github":
        rendered = report.render_github()
        if rendered:
            print(rendered)
    else:
        print(report.render_text())
    if args.fail_on == "never":
        return 0
    threshold = ERROR if args.fail_on == "error" else WARNING
    return 1 if report.count_at_least(threshold) else 0


def cmd_recover(args: argparse.Namespace) -> int:
    from repro.errors import RecoveryError
    from repro.service.persistence import SNAPSHOT_NAME, WAL_NAME
    from repro.service.store import CheckingService

    # pre-flight the state directory so a mistyped path yields one
    # coded diagnostic instead of a cryptic downstream error
    state_dir = Path(args.state_dir)
    if not state_dir.exists():
        raise RecoveryError(
            f"state directory {state_dir} does not exist",
            code="recover.no-state")
    if not state_dir.is_dir():
        raise RecoveryError(
            f"{state_dir} is not a directory", code="recover.no-state")
    if not (state_dir / SNAPSHOT_NAME).exists() \
            and not (state_dir / WAL_NAME).exists():
        raise RecoveryError(
            f"state directory {state_dir} holds neither a "
            f"{SNAPSHOT_NAME} nor a {WAL_NAME}; nothing to recover",
            code="recover.no-state")
    schema = _build_schema(args)
    service = CheckingService.recover(schema, args.state_dir)
    try:
        info = service.last_recovery
        assert info is not None
        committed = service.committed_updates()
        print(f"recovered {args.state_dir}: snapshot through sequence "
              f"{info.snapshot_lsn}, {info.replayed} of "
              f"{info.total_records} logged updates replayed, "
              f"{len(committed)} updates in the commit log")
        violated = service.verify_consistency()
        if violated:
            print("INCONSISTENT; violated constraints: "
                  + ", ".join(violated))
            return 1
        print("consistent")
        if args.checkpoint:
            service.checkpoint()
            print("checkpoint written (replay tail is now empty)")
        return 0
    finally:
        service.close()


def cmd_faultcheck(args: argparse.Namespace) -> int:
    from repro.testing.failpoints import SITES
    from repro.testing.harness import (
        RESTART_SITES,
        SCHEDULES,
        InvariantViolation,
        run_matrix,
        run_restart_matrix,
    )

    if args.list_sites:
        for site, description in sorted(SITES.items()):
            print(f"{site}: {description}")
        return 0
    if args.list_schedules:
        for name, spec in SCHEDULES.items():
            print(f"{name}: {spec}")
        return 0
    seeds = args.seed or [1, 2, 3]
    schedules = args.schedule or list(SCHEDULES)
    try:
        if args.crash_restart:
            if args.mix != "default":
                print("error: --mix is not supported with "
                      "--crash-restart", file=sys.stderr)
                return 2
            sites = args.site or sorted(RESTART_SITES)
            reports = run_restart_matrix(
                seeds, sites, ops=args.ops,
                progress=lambda report: print(
                    f"ok: {report.summary()}"))
        else:
            if args.site:
                print("error: --site requires --crash-restart",
                      file=sys.stderr)
                return 2
            reports = run_matrix(
                seeds, schedules, ops=args.ops, mix=args.mix,
                progress=lambda report: print(
                    f"ok: {report.summary()}"))
    except ValueError as error:  # bad schedule/trigger spec
        print(f"error: {error}", file=sys.stderr)
        return 2
    except InvariantViolation as violation:
        print(f"FAULTCHECK FAILED\n{violation}", file=sys.stderr)
        if args.repro_file:
            lines = [line for line in str(violation).splitlines()
                     if "reproduce with:" in line]
            Path(args.repro_file).write_text(
                (lines[0].split("reproduce with:", 1)[1].strip()
                 if lines else str(violation)) + "\n",
                encoding="utf-8")
            print(f"wrote reproduction command to {args.repro_file}",
                  file=sys.stderr)
        return 1
    from repro.analysis.concurrency import sanitizer
    ordering = sanitizer.violations()
    if ordering:
        print(f"FAULTCHECK FAILED: {len(ordering)} lock ordering "
              "violation(s) recorded by the sanitizer", file=sys.stderr)
        for violation in ordering:
            print(violation.render(), file=sys.stderr)
        return 1
    total = sum(report.faults_fired for report in reports)
    armed = " (lock sanitizer armed)" if sanitizer.armed() else ""
    if args.crash_restart:
        shape = (f"{len(seeds)} seeds x "
                 f"{len(reports) // max(1, len(seeds))} kill sites, "
                 "restart-and-replay")
    else:
        shape = f"{len(seeds)} seeds x {len(schedules)} schedules"
    print(f"faultcheck passed: {len(reports)} scenarios "
          f"({shape}), "
          f"{total} faults fired, all invariants held{armed}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.net import ServiceConfig, ShardedService

    config = ServiceConfig(
        dtds=tuple(_read(path) for path in args.dtd),
        constraints=tuple(_load_constraints(args)),
        patterns=tuple(_read(path) for path in args.pattern or []),
        documents=tuple(_read(path) for path in args.document),
        snapshot_interval=args.snapshot_interval,
        sync_writes=not args.no_sync)
    # compile once up front: a bad DTD/constraint/document should fail
    # here with a parse error, not as N workers dying at startup
    config.build_schema()
    config.initial_documents()

    async def run() -> None:
        service = ShardedService(config, args.state_dir,
                                 workers=args.workers, host=args.host,
                                 port=args.port)
        await service.start()
        print(f"serving on http://{service.host}:{service.port} "
              f"({args.workers} workers, state under {args.state_dir})",
              flush=True)
        try:
            await asyncio.Event().wait()  # serve until interrupted
        finally:
            print("draining workers ...", flush=True)
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    documents = _load_documents(args.document)
    result = evaluate_query(args.expression, documents)
    for item in result:
        if hasattr(item, "tag"):
            from repro.xtree.serializer import serialize_fragment
            print(serialize_fragment(item))
        else:
            print(string_value(item))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.xquery.planner import explain_query, install_priors

    schema = _build_schema(args)
    documents = _load_documents(args.document)
    install_priors(schema.cardinality_priors())
    # constructing the guard attaches the column stores, so explain
    # reports the backend (columnar / planned-DOM) each check would use
    guard = IntegrityGuard(schema, documents)
    if args.update:
        from repro.xupdate.parser import parse_modifications

        for operation in parse_modifications(_read(args.update)):
            checks = guard._checks_for(operation)
            if checks is None:
                print(f"-- {operation.select}: no registered pattern "
                      "(brute-force fallback, nothing to plan)")
                continue
            document = guard._document_for(operation)
            bindings = checks.analyzed.bind(document, operation)
            for check in checks.optimized:
                if check.trivial:
                    continue
                for query in check.queries:
                    if query.prepared is None:
                        continue
                    variables = query.variables_for(bindings) \
                        if query.parameters else None
                    print(f"== {check.constraint.name} "
                          f"(simplified check) ==")
                    print(explain_query(query.prepared, documents,
                                        variables))
                    print()
        return 0
    for constraint in schema.constraints:
        if constraint.dead:
            continue
        for query in constraint.full_queries:
            if query.prepared is None:
                continue
            print(f"== {constraint.name} (full check) ==")
            print(explain_query(query.prepared, documents))
            print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient integrity checking over XML documents "
                    "(EDBT 2006)")
    commands = parser.add_subparsers(dest="command", required=True)

    describe = commands.add_parser(
        "describe", help="print the compiled design-time artifacts")
    _add_schema_arguments(describe)
    describe.set_defaults(handler=cmd_describe)

    check = commands.add_parser(
        "check", help="full consistency check of documents")
    _add_schema_arguments(check)
    check.add_argument("document", nargs="+", help="XML document file")
    check.set_defaults(handler=cmd_check)

    guard = commands.add_parser(
        "guard", help="apply an XUpdate file under integrity control")
    _add_schema_arguments(guard)
    guard.add_argument("--update", required=True,
                       help="XUpdate modification file")
    guard.add_argument("--in-place", action="store_true",
                       help="write updated documents back to their files")
    guard.add_argument("document", nargs="+", help="XML document file")
    guard.set_defaults(handler=cmd_guard)

    shred = commands.add_parser(
        "shred", help="print the relational facts of documents")
    shred.add_argument("--dtd", action="append", required=True)
    shred.add_argument("--constraint", action="append",
                       help=argparse.SUPPRESS)
    shred.add_argument("--constraints-file", help=argparse.SUPPRESS)
    shred.add_argument("document", nargs="+", help="XML document file")
    shred.set_defaults(handler=cmd_shred)

    lint = commands.add_parser(
        "lint", help="static analysis of DTDs + constraints + patterns, "
                     "or of the codebase's lock discipline")
    _add_schema_arguments(lint, dtd_required=False)
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text", help="output format ('github' "
                      "emits workflow-annotation lines)")
    lint.add_argument("--fail-on", choices=("error", "warning", "never"),
                      default="warning",
                      help="lowest severity that causes exit code 1 "
                           "(default: warning)")
    lint.add_argument("--concurrency", action="store_true",
                      help="run the XIC5xx lock-discipline pass over "
                           "the given source paths")
    lint.add_argument("path", nargs="*",
                      help="files/directories for --concurrency "
                           "(default: src/repro)")
    lint.set_defaults(handler=cmd_lint)

    explain = commands.add_parser(
        "explain",
        help="print the planner's chosen evaluation order for the "
             "compiled checks, with estimated vs. actual cardinalities")
    _add_schema_arguments(explain)
    explain.add_argument("--update",
                         help="XUpdate file: explain the simplified "
                              "checks this update triggers instead of "
                              "the full constraint checks")
    explain.add_argument("document", nargs="+", help="XML document file")
    explain.set_defaults(handler=cmd_explain)

    faultcheck = commands.add_parser(
        "faultcheck",
        help="run the crash-consistency fault-injection harness "
             "(seeded workloads x fault schedules, invariant battery)")
    faultcheck.add_argument(
        "--seed", action="append", type=int,
        help="harness seed (repeatable; default: 1 2 3)")
    faultcheck.add_argument(
        "--schedule", action="append",
        help="schedule name or raw failpoint spec 'site=trigger;...' "
             "(repeatable; default: every named schedule)")
    faultcheck.add_argument(
        "--ops", type=int, default=40,
        help="workload steps per scenario (default: 40)")
    faultcheck.add_argument(
        "--mix", choices=("default", "read-heavy"), default="default",
        help="workload step mix; 'read-heavy' skews toward snapshot "
             "reads to exercise publish/pin/retire under faults "
             "(default: default)")
    faultcheck.add_argument(
        "--repro-file",
        help="on failure, write the reproduction command to this file")
    faultcheck.add_argument(
        "--crash-restart", action="store_true",
        help="run the kill-at-failpoint restart matrix instead: the "
             "durable service dies at each site, restarts from its "
             "snapshot + write-ahead log, and the recovered state is "
             "verified against a sequential oracle")
    faultcheck.add_argument(
        "--site", action="append",
        help="kill site for --crash-restart (repeatable; default: "
             "every site in RESTART_SITES)")
    faultcheck.add_argument(
        "--list-sites", action="store_true",
        help="print the failpoint site catalog and exit")
    faultcheck.add_argument(
        "--list-schedules", action="store_true",
        help="print the named fault schedules and exit")
    faultcheck.set_defaults(handler=cmd_faultcheck)

    recover = commands.add_parser(
        "recover",
        help="rebuild a durable checking service from its state "
             "directory and verify the recovered state")
    _add_schema_arguments(recover)
    recover.add_argument("--state-dir", required=True,
                         help="directory holding snapshot.json + "
                              "wal.log")
    recover.add_argument("--checkpoint", action="store_true",
                         help="write a fresh snapshot after recovery, "
                              "emptying the replay tail")
    recover.set_defaults(handler=cmd_recover)

    serve = commands.add_parser(
        "serve",
        help="run the networked sharded checking service (asyncio "
             "HTTP edge + N durable worker processes)")
    _add_schema_arguments(serve)
    serve.add_argument("--document", action="append", required=True,
                       help="XML file seeding every new document "
                            "group (repeatable)")
    serve.add_argument("--state-dir", required=True,
                       help="root directory for per-shard durable "
                            "state (shard-<uid>/ subdirectories)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker process count (default: 2)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8626,
                       help="TCP port, 0 for ephemeral "
                            "(default: 8626)")
    serve.add_argument("--snapshot-interval", type=int, default=64,
                       help="updates between WAL checkpoints "
                            "(default: 64)")
    serve.add_argument("--no-sync", action="store_true",
                       help="skip fsync on commit (faster, loses the "
                            "power-failure guarantee)")
    serve.set_defaults(handler=cmd_serve)

    query = commands.add_parser(
        "query", help="evaluate an XQuery expression over documents")
    query.add_argument("expression", help="XQuery text")
    query.add_argument("document", nargs="+", help="XML document file")
    query.set_defaults(handler=cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        code = getattr(error, "code", None)
        prefix = f"error [{code}]" if code else "error"
        print(f"{prefix}: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
