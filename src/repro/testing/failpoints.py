"""Deterministic fault injection: named failpoints on the hot path.

The transactional machinery grown around the paper's checkers —
:class:`~repro.xupdate.apply.TransactionLog`, the guard's probe paths,
the :class:`~repro.service.CheckingService` commit log, the planner's
batch-repaired indexes — claims to keep the store consistent under
*any* mid-flight failure.  This module makes that claim testable: the
instrumented modules call :meth:`fail.point(name) <FailPointRegistry.
point>` at every seam of the update/check/commit path, and a test (or
the ``repro faultcheck`` harness) *arms* a subset of those sites with
deterministic triggers that raise :class:`FailPointError` at exactly
chosen hits.

Design constraints, in order:

1. **Zero overhead unarmed.**  Production code pays one dictionary
   lookup per site when nothing is armed (the registry's dict is
   empty, ``dict.get`` returns ``None``, done).  No locks, no string
   formatting, no counters.  ``benchmarks/test_failpoint_overhead.py``
   keeps this honest.
2. **Deterministic.**  Triggers are counted or seeded; the same
   schedule against the same workload fires at the same hits.  No
   wall-clock, no global entropy.
3. **Accountable.**  Every armed site counts hits and fires, so a
   test can assert a schedule actually exercised the seam it targets
   instead of passing vacuously.

Trigger spec grammar (used by :meth:`FailPointRegistry.armed`, the
``REPRO_FAILPOINTS`` environment variable and ``repro faultcheck
--schedule``)::

    spec     := entry (';' entry)*
    entry    := site '=' trigger ('@thread=' pattern)?
    trigger  := 'count:' N          # fire once, on the Nth hit
              | 'every:' N          # fire on hits N, 2N, 3N, ...
              | 'prob:' P (':' S)?  # fire with probability P, RNG
                                    # seeded with S (default 0)

``pattern`` is an :mod:`fnmatch` glob matched against the hitting
thread's name — the filter for concurrency tests that want to fault
one writer while its peers proceed.

Example::

    with fail.armed({"core.guard.post_check": "count:2"}) as fp:
        ...
        assert fp.fired("core.guard.post_check")

or, from the outside::

    REPRO_FAILPOINTS="xupdate.apply.pre_op=count:3" repro guard ...
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from fnmatch import fnmatchcase
from typing import Iterator

from repro.analysis.concurrency import guarded_by, make_lock

__all__ = [
    "FailPointError",
    "FailPointRegistry",
    "SITES",
    "Trigger",
    "fail",
]


class FailPointError(Exception):
    """The exception an armed failpoint injects.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the library
    never catches it as part of normal error handling, so an injected
    fault propagates exactly like an unforeseen runtime failure
    (``MemoryError``, a bug) would — which is the condition the
    crash-consistency harness is probing.

    Attributes:
        site: the failpoint name that fired.
        hit: the 1-based hit number at which it fired.
    """

    def __init__(self, site: str, hit: int) -> None:
        self.site = site
        self.hit = hit
        super().__init__(f"injected fault at {site!r} (hit {hit})")


#: Catalog of instrumented sites: name → where it sits and what an
#: injected fault there simulates.  ``point()`` does not require the
#: site to be listed (instrumentation may grow faster than the
#: catalog), but schedules are validated against it to catch typos.
SITES: dict[str, str] = {
    "xupdate.apply.pre_op":
        "TransactionLog.apply, before the operation executes — the "
        "update fails before touching the document",
    "xupdate.apply.post_op":
        "TransactionLog.apply, after the undo record is logged — a "
        "later operation of the same update will never run",
    "xupdate.rollback.pre":
        "TransactionLog abort, before any compensation runs — the "
        "first rollback attempt dies and is retried once",
    "xupdate.rollback.post":
        "TransactionLog abort, after every compensation ran — the "
        "rollback succeeded but its caller sees an error",
    "core.guard.post_check":
        "IntegrityGuard, between a passed check and the apply — "
        "early detection decided, execution fails anyway",
    "core.guard.probe.mid":
        "apply-check-rollback probe, between the probe apply and the "
        "consistency check — the probe must still roll back",
    "core.guard.batch.settle":
        "IntegrityGuard.check_batch, after an update settled and "
        "before the batch indexes are repaired/re-filed",
    "service.locks.post_read_acquire":
        "ReadWriteLock.read_locked, after acquisition — the reader "
        "dies while holding the lock",
    "service.locks.post_write_acquire":
        "ReadWriteLock.write_locked, after acquisition — the writer "
        "dies while holding the lock",
    "service.store.pre_commit_append":
        "CheckingService, after the checker committed and before the "
        "commit-log append — the applied update goes unlogged",
    "planner.stats.refresh":
        "check planner, while refreshing per-document statistics for "
        "a (re)plan",
    "planner.plan_cache.insert":
        "check planner, before a fresh plan enters the plan cache",
    "planner.batch.announce":
        "planner batch scope, when the guard announces an imminent "
        "mid-update mutation",
    "planner.batch.repair":
        "planner batch scope, before a settled update's value indexes "
        "are incrementally repaired",
    "columns.delta.apply":
        "column store mutation listener, after the store is marked "
        "dirty and before the delta patches any column — the store "
        "self-heals with a full rebuild on the next read",
    "columns.delta.settle":
        "column store mutation listener, after the delta patched the "
        "columns and before the document revision is stamped back — "
        "a fully-applied delta is discarded and rebuilt",
    "columns.batch.settle":
        "IntegrityGuard.check_batch settling, before dirty column "
        "stores are eagerly rebuilt at the batch boundary",
    "columns.rebuild":
        "column store validation, before a dirty store rebuilds its "
        "materialized tables and indexes from the DOM",
    "service.snapshots.publish":
        "snapshot publisher, after the manager is marked dirty and "
        "before the new snapshot version installs — readers see no "
        "pinnable snapshot and repair one under the read lock",
    "service.snapshots.pin":
        "snapshot pin, after the pin count is taken and before the "
        "snapshot is handed to the reader — the pin must be released "
        "so retirement still drains",
    "service.snapshots.retire":
        "epoch retirement, after a superseded snapshot is queued and "
        "before unpinned versions are reclaimed — the next publish or "
        "unpin must finish the reclaim",
    "persistence.pre_fsync":
        "DurableLog.append, between the record's first and last bytes "
        "reaching the file and before fsync — the process dies with a "
        "torn trailing record that recovery must truncate",
    "persistence.post_append_pre_apply":
        "durable pre-commit hook, after the WAL record is fsync'd and "
        "before the update commits in memory — logged but never "
        "applied; restart-and-replay must apply it",
    "persistence.snapshot_rename":
        "snapshot writer, after the temp file is written and fsync'd "
        "and before the atomic rename installs it — the previous "
        "snapshot stays current and the temp file is ignored",
    "persistence.replay_record":
        "recovery, before a WAL tail record is replayed through the "
        "checker — recovery dies mid-replay and a retry must succeed "
        "from the same snapshot and log",
}


class Trigger:
    """A parsed firing rule: when does an armed site actually raise."""

    __slots__ = ("kind", "value", "seed", "thread_pattern", "_rng")

    def __init__(self, kind: str, value: float, seed: int = 0,
                 thread_pattern: str | None = None) -> None:
        if kind not in ("count", "every", "prob"):
            raise ValueError(f"unknown trigger kind {kind!r}")
        if kind in ("count", "every") and (value != int(value)
                                           or value < 1):
            raise ValueError(
                f"{kind} trigger needs a positive integer, got {value}")
        if kind == "prob" and not 0.0 <= value <= 1.0:
            raise ValueError(
                f"prob trigger needs a probability in [0, 1], "
                f"got {value}")
        self.kind = kind
        self.value = value
        self.seed = seed
        self.thread_pattern = thread_pattern
        self._rng = random.Random(seed) if kind == "prob" else None

    @classmethod
    def parse(cls, text: str) -> "Trigger":
        """Parse one trigger spec (``count:2``, ``every:3``,
        ``prob:0.25:7``, optionally ``@thread=...``)."""
        text = text.strip()
        thread_pattern = None
        if "@thread=" in text:
            text, _, thread_pattern = text.partition("@thread=")
            text = text.strip()
            thread_pattern = thread_pattern.strip()
            if not thread_pattern:
                raise ValueError("empty @thread= filter")
        parts = text.split(":")
        kind = parts[0].strip()
        try:
            if kind in ("count", "every"):
                if len(parts) != 2:
                    raise ValueError
                return cls(kind, int(parts[1]),
                           thread_pattern=thread_pattern)
            if kind == "prob":
                if len(parts) not in (2, 3):
                    raise ValueError
                seed = int(parts[2]) if len(parts) == 3 else 0
                return cls(kind, float(parts[1]), seed=seed,
                           thread_pattern=thread_pattern)
        except ValueError:
            pass
        raise ValueError(
            f"malformed trigger spec {text!r} (expected count:N, "
            f"every:N or prob:P[:SEED], optionally @thread=GLOB)")

    def matches_thread(self, thread_name: str) -> bool:
        return self.thread_pattern is None \
            or fnmatchcase(thread_name, self.thread_pattern)

    def decide(self, eligible_hit: int, fires_so_far: int) -> bool:
        """Whether the ``eligible_hit``-th matching hit fires.

        Called under the registry lock, so the probabilistic RNG draws
        form one deterministic per-arming sequence.
        """
        if self.kind == "count":
            return fires_so_far == 0 and eligible_hit == int(self.value)
        if self.kind == "every":
            return eligible_hit % int(self.value) == 0
        assert self._rng is not None
        return self._rng.random() < self.value

    def render(self) -> str:
        if self.kind == "prob":
            text = f"prob:{self.value:g}:{self.seed}"
        else:
            text = f"{self.kind}:{int(self.value)}"
        if self.thread_pattern is not None:
            text += f"@thread={self.thread_pattern}"
        return text


class _ArmedSite:
    """Mutable per-site arming state: the trigger plus accounting."""

    __slots__ = ("site", "trigger", "hits", "eligible_hits", "fires")

    def __init__(self, site: str, trigger: Trigger) -> None:
        self.site = site
        self.trigger = trigger
        #: every time the instrumented line ran while armed
        self.hits = 0
        #: hits that passed the thread filter
        self.eligible_hits = 0
        #: hits that raised
        self.fires = 0


class ArmedHandle:
    """What :meth:`FailPointRegistry.armed` yields: the accounting
    view of one arming session."""

    def __init__(self, sites: dict[str, _ArmedSite],
                 lock: threading.Lock) -> None:
        self._sites = sites
        self._registry_lock = lock

    def hits(self, site: str) -> int:
        """Times the site was reached while this arming was active."""
        with self._registry_lock:
            return self._sites[site].hits

    def fires(self, site: str) -> int:
        """Times the site raised while this arming was active."""
        with self._registry_lock:
            return self._sites[site].fires

    def fired(self, site: str) -> bool:
        return self.fires(site) > 0

    def counts(self) -> dict[str, tuple[int, int]]:
        """site → (hits, fires) for every armed site."""
        with self._registry_lock:
            return {name: (armed.hits, armed.fires)
                    for name, armed in self._sites.items()}

    def assert_fired(self, *sites: str) -> None:
        """Fail loudly when a schedule never exercised its targets."""
        quiet = [site for site in (sites or self._sites)
                 if not self.fired(site)]
        if quiet:
            raise AssertionError(
                "failpoint site(s) never fired: " + ", ".join(quiet))


ScheduleSpec = "dict[str, str | Trigger] | str | None"


def parse_schedule(spec: "dict[str, str | Trigger] | str",
                   known_only: bool = True) -> dict[str, Trigger]:
    """Normalize a schedule (mapping or ``a=b;c=d`` text) to triggers."""
    entries: dict[str, Trigger] = {}
    if isinstance(spec, str):
        pairs = [entry for entry in spec.split(";") if entry.strip()]
        mapping: dict[str, str | Trigger] = {}
        for pair in pairs:
            site, separator, trigger = pair.partition("=")
            if not separator:
                raise ValueError(
                    f"malformed schedule entry {pair!r} "
                    "(expected site=trigger)")
            mapping[site.strip()] = trigger
    else:
        mapping = dict(spec)
    for site, trigger in mapping.items():
        if known_only and site not in SITES:
            raise ValueError(
                f"unknown failpoint site {site!r}; see "
                "repro.testing.failpoints.SITES (or pass "
                "known_only=False)")
        entries[site] = trigger if isinstance(trigger, Trigger) \
            else Trigger.parse(trigger)
    return entries


@guarded_by("self._registry_lock", "_armed")
class FailPointRegistry:
    """Process-global registry of armed failpoints.

    One instance (:data:`fail`) serves the whole process.  The
    instrumented modules call :meth:`point`; tests arm sites through
    :meth:`armed` (scoped) or the environment (process lifetime).
    """

    def __init__(self) -> None:
        #: armed site → state.  Replaced wholesale (never mutated in
        #: place) on arm/disarm, so :meth:`point` may read it without
        #: the lock: under the GIL ``dict.get`` on a stable reference
        #: is atomic, and an unarmed registry is an *empty* dict —
        #: the advertised single-lookup fast path.
        self._armed: dict[str, _ArmedSite] = {}
        self._registry_lock = make_lock("testing.failpoints")

    def point(self, site: str) -> None:
        """Fault-injection site: no-op unless ``site`` is armed.

        The unlocked read is the documented benign fast path — see the
        ``_armed`` comment in :meth:`__init__`.
        """
        armed = self._armed.get(site)  # lock: ignore
        if armed is None:
            return
        self._hit(armed)

    def _hit(self, armed: _ArmedSite) -> None:
        with self._registry_lock:
            armed.hits += 1
            trigger = armed.trigger
            if not trigger.matches_thread(
                    threading.current_thread().name):
                return
            armed.eligible_hits += 1
            if not trigger.decide(armed.eligible_hits, armed.fires):
                return
            armed.fires += 1
            hit = armed.hits
        raise FailPointError(armed.site, hit)

    def active_sites(self) -> dict[str, str]:
        """Currently armed site → rendered trigger spec."""
        with self._registry_lock:
            return {name: armed.trigger.render()
                    for name, armed in self._armed.items()}

    @contextmanager
    def armed(self, schedule: "dict[str, str | Trigger] | str",
              known_only: bool = True) -> Iterator[ArmedHandle]:
        """Arm a schedule for the duration of the block.

        Nested armings compose: inner schedules shadow outer ones per
        site and the outer arming (with its counters) is restored on
        exit.  Yields an :class:`ArmedHandle` for hit accounting.
        """
        triggers = parse_schedule(schedule, known_only=known_only)
        session = {site: _ArmedSite(site, trigger)
                   for site, trigger in triggers.items()}
        with self._registry_lock:
            previous = self._armed
            merged = dict(previous)
            merged.update(session)
            self._armed = merged
        try:
            yield ArmedHandle(session, self._registry_lock)
        finally:
            with self._registry_lock:
                restored = {
                    name: armed
                    for name, armed in self._armed.items()
                    if session.get(name) is not armed}
                for name, armed in previous.items():
                    if name in session and name not in restored:
                        restored[name] = armed
                self._armed = restored

    def arm_persistent(self,
                       schedule: "dict[str, str | Trigger] | str",
                       known_only: bool = True) -> ArmedHandle:
        """Arm without a scope (environment/CLI use); see
        :meth:`disarm_all`."""
        triggers = parse_schedule(schedule, known_only=known_only)
        session = {site: _ArmedSite(site, trigger)
                   for site, trigger in triggers.items()}
        with self._registry_lock:
            merged = dict(self._armed)
            merged.update(session)
            self._armed = merged
        return ArmedHandle(session, self._registry_lock)

    def disarm_all(self) -> None:
        with self._registry_lock:
            self._armed = {}


#: The process-global registry every instrumented module imports.
fail = FailPointRegistry()


def _arm_from_environment(registry: FailPointRegistry) -> None:
    spec = os.environ.get("REPRO_FAILPOINTS", "").strip()
    if spec:
        registry.arm_persistent(spec)


_arm_from_environment(fail)
