"""Fault-injection and crash-consistency testing infrastructure.

Two layers:

* :mod:`repro.testing.failpoints` — the deterministic failpoint
  registry the production modules are instrumented with (import-light:
  the instrumented hot paths pull in nothing but it);
* :mod:`repro.testing.harness` — the crash-consistency scenario
  harness driving seeded update workloads against a
  :class:`~repro.service.CheckingService` under fault schedules, then
  asserting the invariant battery (imported on demand — it pulls in
  the whole service stack).

Only the failpoint names are re-exported here so that importing
``repro.testing`` from instrumented modules stays cycle-free.
"""

from repro.testing.failpoints import (
    SITES,
    FailPointError,
    FailPointRegistry,
    Trigger,
    fail,
)

__all__ = [
    "FailPointError",
    "FailPointRegistry",
    "SITES",
    "Trigger",
    "fail",
]
