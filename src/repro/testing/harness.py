"""Crash-consistency harness for the transactional checking pipeline.

Runs a seeded update workload against a :class:`~repro.service.store.
CheckingService` while a fault schedule (armed :mod:`~repro.testing.
failpoints`) fires injected exceptions at the instrumented seams, then
asserts the **invariant battery**:

1. *oracle equality* — the final store state is byte-identical to a
   fault-free sequential replay of the *accepted* updates on a fresh
   corpus, driven by :class:`~repro.core.guard.BruteForceChecker`;
2. *verdict agreement* — every guard verdict observed during the run
   (accepted or rejected) matches the brute-force oracle's verdict for
   the same update against the same state;
3. *no torn state* — an update that errored out mid-flight left no
   trace (implied by 1: errored updates are excluded from the replay);
4. *locks released* — the store's reader–writer lock is fully idle and
   immediately re-acquirable after the workload;
5. *caches cold-rebuild clean* — each document's incremental tag index
   agrees with a cold reparse of its serialized form, and the guard's
   full check (through the planner's statistics/plan caches) agrees
   with a cache-free brute-force check on the reparsed documents;
6. *commit-log consistency* — the service commit log is exactly the
   accepted sequence, except for a possible suffix of entries whose
   steps errored *after* the update committed (the
   ``service.store.pre_commit_append`` seam).

Updates are classified by a checker listener rather than by the
return value of the service call: listeners run inside the
transactional scope, after the decision is final but before anything
else can fail, so a listener-observed ``applied=True`` means the
update is durably in the documents even when the surrounding service
call subsequently raised.

The workload mixes every checking path the guard has: pattern-matched
single appends (legal and constraint-violating), ``insert-after``
variants, multi-operation modification documents, unregistered
publication inserts (brute-force probe, footnote 4), removals, batch
rounds through :meth:`CheckingService.check_batch`, and read-side
calls (``verify_consistency`` / ``snapshot``).
"""

from __future__ import annotations

import random
import shlex
import shutil
import tempfile
import threading
from dataclasses import dataclass, field, replace

from repro.core.guard import BruteForceChecker, verify_documents
from repro.datagen.corpus import CorpusSpec, generate_corpus
from repro.datagen.running_example import make_schema, submission_xupdate
from repro.datagen.workload import (
    busy_reviewer_targets,
    illegal_submission,
    legal_submission,
)
from repro.service.store import CheckingService
from repro.testing.failpoints import fail, parse_schedule
from repro.xtree.node import Document
from repro.xtree.parser import parse_document
from repro.xtree.serializer import serialize
from repro.xupdate.parser import canonical_update_text
from repro.xquery import planner


class InvariantViolation(AssertionError):
    """An invariant of the fault run was violated.

    Subclasses :class:`AssertionError` so pytest reports it as a test
    failure, not an error; the message always embeds the reproduction
    command.
    """


#: Named fault schedules for the CLI and CI matrix.  Each one
#: concentrates on a different seam of the pipeline; ``chaos`` arms a
#: low-probability fault on every seam at once (seeded, so the run is
#: still deterministic for a given harness seed).
SCHEDULES: dict[str, str] = {
    "apply": ("xupdate.apply.pre_op=count:3;"
              "xupdate.apply.post_op=count:7"),
    "rollback": ("xupdate.rollback.pre=count:1;"
                 "xupdate.rollback.post=count:2;"
                 "core.guard.probe.mid=count:2"),
    "guard": ("core.guard.post_check=count:2;"
              "planner.stats.refresh=count:4;"
              "planner.plan_cache.insert=count:2"),
    "service": ("service.store.pre_commit_append=count:2;"
                "service.locks.post_write_acquire=count:4;"
                "service.locks.post_read_acquire=count:2"),
    "batch": ("planner.batch.announce=count:2;"
              "planner.batch.repair=count:1;"
              "core.guard.batch.settle=count:1"),
    "columnar": ("columns.delta.apply=count:2;"
                 "columns.delta.settle=count:5;"
                 "columns.rebuild=count:1;"
                 "columns.batch.settle=count:1"),
    "wal": "persistence.post_append_pre_apply=count:3",
    "wal-torn": "persistence.pre_fsync=count:3",
    "snapshot": "persistence.snapshot_rename=count:1",
    "mvcc": ("service.snapshots.publish=count:2;"
             "service.snapshots.pin=count:2;"
             "service.snapshots.retire=count:1"),
    "chaos": ("xupdate.apply.pre_op=prob:0.05:11;"
              "xupdate.apply.post_op=prob:0.05:12;"
              "xupdate.rollback.pre=prob:0.03:13;"
              "core.guard.post_check=prob:0.05:14;"
              "core.guard.probe.mid=prob:0.05:15;"
              "core.guard.batch.settle=prob:0.05:16;"
              "service.store.pre_commit_append=prob:0.05:17;"
              "service.locks.post_write_acquire=prob:0.03:18;"
              "service.locks.post_read_acquire=prob:0.03:19;"
              "planner.stats.refresh=prob:0.03:20;"
              "planner.plan_cache.insert=prob:0.03:21;"
              "planner.batch.announce=prob:0.03:22;"
              "planner.batch.repair=prob:0.03:23;"
              "columns.delta.apply=prob:0.03:24;"
              "columns.delta.settle=prob:0.03:25;"
              "columns.rebuild=prob:0.03:26;"
              "columns.batch.settle=prob:0.03:27;"
              "service.snapshots.publish=prob:0.03:28;"
              "service.snapshots.pin=prob:0.03:29;"
              "service.snapshots.retire=prob:0.03:30"),
}

#: Corpus knobs for the harness: small enough that a full run with
#: oracle replay takes a few seconds, rich enough that every workload
#: kind has targets (busy reviewers for the workload constraint).
_HARNESS_SPEC = CorpusSpec(
    tracks=2, revs_per_track=3, subs_per_rev=2, auts_per_sub=2,
    pubs=6, auts_per_pub=2, busy_reviewers=1, author_pool=30)


@dataclass
class StepOutcome:
    """What one workload step did, as observed from the outside."""

    index: int
    kind: str
    #: "accepted" / "rejected" / "errored" / "read"
    outcome: str
    #: repr of the raised exception for errored steps
    error: str = ""


@dataclass
class FaultRunReport:
    """Everything one :func:`run_scenario` call observed."""

    seed: int
    schedule: str
    spec: str
    ops: int
    mix: str = "default"
    steps: list[StepOutcome] = field(default_factory=list)
    #: site → (hits, fires) for every armed site
    site_counts: dict[str, tuple[int, int]] = field(default_factory=dict)
    accepted: int = 0
    rejected: int = 0
    errored: int = 0
    faults_fired: int = 0

    @property
    def repro_command(self) -> str:
        """Shell command that reruns this exact scenario."""
        schedule = (self.schedule if self.schedule in SCHEDULES
                    else shlex.quote(self.spec))
        mix = "" if self.mix == "default" else f" --mix {self.mix}"
        return (f"python -m repro faultcheck --seed {self.seed} "
                f"--schedule {schedule} --ops {self.ops}{mix}")

    def summary(self) -> str:
        fired = ", ".join(
            f"{site}={fires}/{hits}"
            for site, (hits, fires) in sorted(self.site_counts.items())
            if hits) or "none"
        return (f"seed={self.seed} schedule={self.schedule} "
                f"ops={self.ops}: {self.accepted} accepted, "
                f"{self.rejected} rejected, {self.errored} errored, "
                f"{self.faults_fired} faults fired "
                f"(fires/hits per site: {fired})")


def _fresh_corpus(seed: int) -> tuple[Document, Document]:
    pub_doc, rev_doc = generate_corpus(replace(_HARNESS_SPEC, seed=seed))
    return pub_doc, rev_doc


def _multi_op_update(rev_doc: Document, rng: random.Random) -> str:
    """Two appends in one modification document (transaction path)."""
    inner = []
    for _ in range(2):
        text = legal_submission(rev_doc, rng, kind="append")
        start = text.index("<xupdate:append")
        end = text.index("</xupdate:append>") + len("</xupdate:append>")
        inner.append(text[start:end])
    return ('<?xml version="1.0"?>\n'
            '<xupdate:modifications version="1.0"\n'
            '    xmlns:xupdate="http://www.xmldb.org/xupdate">\n'
            + "\n".join(inner) + "\n</xupdate:modifications>")


def _reviewer_author_pairs(rev_doc: Document) -> list[tuple[str, str]]:
    """(reviewer, submission author) pairs from the review document."""
    pairs = []
    for track in rev_doc.root.element_children("track"):
        for rev in track.element_children("rev"):
            name = rev.first_child("name")
            reviewer = name.text() if name is not None else ""
            for sub in rev.element_children("sub"):
                auts = sub.first_child("auts")
                if auts is None:
                    continue
                for aut in auts.element_children("name"):
                    if aut.text() and reviewer:
                        pairs.append((reviewer, aut.text()))
    return pairs


def _pub_xupdate(authors: list[str]) -> str:
    """An (unregistered-pattern) publication insert — probe path."""
    names = "".join(f"<name>{a}</name>" for a in authors)
    return f"""<?xml version="1.0"?>
<xupdate:modifications version="1.0"
    xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/dblp">
    <xupdate:element name="pub">
      <title>Injected Paper</title>
      <auts>{names}</auts>
    </xupdate:element>
  </xupdate:append>
</xupdate:modifications>"""


def _removal_update(rev_doc: Document, rng: random.Random) -> str:
    """Remove an existing submission (deletion-safety path)."""
    candidates = []
    for t, track in enumerate(rev_doc.root.element_children("track"), 1):
        for r, rev in enumerate(track.element_children("rev"), 1):
            for s, _sub in enumerate(rev.element_children("sub"), 1):
                candidates.append((t, r, s))
    if not candidates:
        return _pub_xupdate(["Fresh Author 0"])
    t, r, s = rng.choice(candidates)
    return f"""<?xml version="1.0"?>
<xupdate:modifications version="1.0"
    xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:remove select="/review/track[{t}]/rev[{r}]/sub[{s}]"/>
</xupdate:modifications>"""


_STEP_KINDS = [
    # (kind, weight)
    ("legal", 5),
    ("legal-after", 2),
    ("illegal-conflict", 3),
    ("illegal-workload", 2),
    ("multi-op", 2),
    ("pub-legal", 1),
    ("pub-illegal", 1),
    ("removal", 1),
    ("bad-select", 1),
    ("batch", 2),
    ("read", 2),
]

#: the ``read-heavy`` mix: mostly snapshot-path reads with enough
#: writes interleaved that publication and epoch retirement keep
#: churning — the shape that exercises the snapshot failpoint sites
_STEP_KINDS_READ_HEAVY = [
    ("legal", 3),
    ("illegal-conflict", 1),
    ("multi-op", 1),
    ("removal", 1),
    ("batch", 1),
    ("read", 12),
]

_MIXES: dict[str, list[tuple[str, int]]] = {
    "default": _STEP_KINDS,
    "read-heavy": _STEP_KINDS_READ_HEAVY,
}


def _make_step(kind: str, rev_doc: Document,
               rng: random.Random) -> "str | list[str] | None":
    """The update text(s) for one step; ``None`` for read-only steps.

    Steps are generated against ``rev_doc`` — the *oracle's untouched
    copy* of the corpus, not the live one — so the workload text is a
    pure function of (seed, step sequence) and never depends on what
    faults did to the live documents.
    """
    if kind == "legal":
        return legal_submission(rev_doc, rng)
    if kind == "legal-after":
        return legal_submission(rev_doc, rng, kind="after")
    if kind == "illegal-conflict":
        return illegal_submission(rev_doc, rng, "conflict")
    if kind == "illegal-workload":
        if not busy_reviewer_targets(rev_doc):
            return legal_submission(rev_doc, rng)
        return illegal_submission(rev_doc, rng, "workload")
    if kind == "multi-op":
        return _multi_op_update(rev_doc, rng)
    if kind == "pub-legal":
        return _pub_xupdate([f"Fresh Author {rng.randrange(10 ** 9)}",
                             f"Fresh Author {rng.randrange(10 ** 9)}"])
    if kind == "pub-illegal":
        pairs = _reviewer_author_pairs(rev_doc)
        if not pairs:
            return _pub_xupdate(["Fresh Author 1"])
        reviewer, author = rng.choice(pairs)
        return _pub_xupdate([reviewer, author])
    if kind == "removal":
        return _removal_update(rev_doc, rng)
    if kind == "bad-select":
        return submission_xupdate(
            9, 9, "Nowhere Submission", "Nobody")
    if kind == "batch":
        batch = []
        for _ in range(rng.randrange(2, 5)):
            sub_kind = rng.choice(
                ["legal", "legal", "illegal-conflict", "pub-legal"])
            update = _make_step(sub_kind, rev_doc, rng)
            assert isinstance(update, str)
            batch.append(update)
        return batch
    assert kind == "read"
    return None


def _weighted_kinds(rng: random.Random, count: int,
                    mix: str = "default") -> list[str]:
    try:
        step_kinds = _MIXES[mix]
    except KeyError:
        raise ValueError(
            f"unknown workload mix {mix!r}; "
            f"choose from {sorted(_MIXES)}") from None
    kinds = [kind for kind, weight in step_kinds
             for _ in range(weight)]
    return [rng.choice(kinds) for _ in range(count)]


# ---------------------------------------------------------------------------
# invariant battery
# ---------------------------------------------------------------------------


def _violation(report: FaultRunReport, invariant: str,
               detail: str) -> InvariantViolation:
    return InvariantViolation(
        f"invariant violated [{invariant}]: {detail}\n"
        f"  run: {report.summary()}\n"
        f"  reproduce with: PYTHONPATH=src {report.repro_command}")


def _check_locks_released(service: CheckingService,
                          report: FaultRunReport) -> None:
    lock = service.store.lock
    with lock._condition:
        state = (lock._readers, lock._writer_active,
                 lock._writers_waiting)
    if state != (0, False, 0):
        raise _violation(
            report, "locks-released",
            f"lock not idle after workload: readers={state[0]}, "
            f"writer_active={state[1]}, writers_waiting={state[2]}")
    # belt and braces: the write side must be immediately acquirable
    acquired = threading.Event()

    def probe() -> None:
        with lock.write_locked():
            acquired.set()

    thread = threading.Thread(target=probe, daemon=True)
    thread.start()
    thread.join(timeout=5.0)
    if not acquired.is_set():
        raise _violation(report, "locks-released",
                         "write lock could not be re-acquired")


def _check_tag_indexes(documents: list[Document],
                       report: FaultRunReport) -> None:
    """Each incremental tag index must match a cold reparse."""
    for document in documents:
        cold = parse_document(serialize(document))
        tags = {element.tag for element in cold.root.iter_elements()}
        if document.element_count() != cold.element_count():
            raise _violation(
                report, "cache-cold-rebuild",
                f"element_count drifted for <{document.root.tag}>: "
                f"{document.element_count()} cached vs "
                f"{cold.element_count()} cold")
        for tag in tags | {"__absent__"}:
            if document.tag_count(tag) != cold.tag_count(tag):
                raise _violation(
                    report, "cache-cold-rebuild",
                    f"tag_count({tag!r}) drifted for "
                    f"<{document.root.tag}>: {document.tag_count(tag)} "
                    f"cached vs {cold.tag_count(tag)} cold")
            if (document.tag_distinct_count(tag)
                    != cold.tag_distinct_count(tag)):
                raise _violation(
                    report, "cache-cold-rebuild",
                    f"tag_distinct_count({tag!r}) drifted for "
                    f"<{document.root.tag}>")


def _check_column_stores(documents: list[Document],
                         report: FaultRunReport) -> None:
    """Each column store must equal a cold rebuild over the final DOM.

    The delta-maintenance protocol self-heals after injected crashes
    (write-ahead invalidation, rebuild on next read), so after the
    workload — whatever faults fired — tables must match a cold
    re-shred and value indexes a from-scratch build.
    """
    from repro.relational.incremental import store_of
    for document in documents:
        store = store_of(document)
        if store is None:
            continue
        for problem in store.verify():
            raise _violation(
                report, "columns-cold-rebuild",
                f"<{document.root.tag}> column store: {problem} "
                f"(delta_failures={store.delta_failures}, "
                f"rebuilds={store.rebuilds})")


def _run_oracle(seed: int, observed: list[tuple[str, bool]],
                report: FaultRunReport) -> tuple[Document, Document]:
    """Replay the observed verdict sequence on a fresh corpus.

    ``observed`` is the listener trace: (update text, applied) in
    notification order.  The brute-force oracle must agree with every
    verdict, and applying exactly the accepted updates yields the
    reference final state.
    """
    schema = make_schema()
    pub_doc, rev_doc = _fresh_corpus(seed)
    oracle = BruteForceChecker(schema, [pub_doc, rev_doc])
    for position, (update, applied) in enumerate(observed):
        decision = oracle.try_execute(update)
        if decision.applied != applied:
            verdict = "accepted" if applied else "rejected"
            oracle_verdict = ("accepted" if decision.applied
                              else f"rejected ({decision.violated})")
        else:
            continue
        raise _violation(
            report, "verdict-agreement",
            f"guard {verdict} update #{position} but the brute-force "
            f"oracle {oracle_verdict}:\n{update}")
    return pub_doc, rev_doc


def _check_commit_log(service: CheckingService,
                      accepted: list[str],
                      report) -> None:
    committed_texts = [canonical_update_text(entry.update)
                       for entry in service.committed_updates()]
    if committed_texts == accepted:
        return
    if service.durable:
        # log-then-apply: the write-ahead append happens *before* the
        # listener observes the decision, so the commit log must be
        # exactly the accepted sequence — the applied-but-unlogged
        # window of the volatile path does not exist
        raise _violation(
            report, "commit-log",
            "durable commit log diverged from the accepted sequence: "
            f"{len(committed_texts)} committed vs "
            f"{len(accepted)} accepted")
    # volatile path: a fault between the document commit and the log
    # append may legitimately drop entries — but only ever *later*
    # accepted entries, never reorderings or inventions
    it = iter(accepted)
    for text in committed_texts:
        for candidate in it:
            if candidate == text:
                break
        else:
            raise _violation(
                report, "commit-log",
                "commit log contains an update the listeners never "
                f"saw accepted:\n{text}")


def _check_snapshot_epochs(service: CheckingService,
                           report: FaultRunReport) -> None:
    """Epoch accounting must be drained once the workload is quiet.

    Every pin taken during the run (including those interrupted by
    injected faults) must be matched by an unpin, every superseded
    snapshot must have been reclaimed by the scans the battery's own
    reads triggered, and a fault that died inside a publication must
    have been repaired by the read path (manager no longer dirty).
    """
    if not service.snapshot_reads:
        return
    stats = service.snapshots.stats()
    if stats["pins"]:
        raise _violation(
            report, "snapshot-epochs",
            f"leaked snapshot pins after workload: {stats['pins']} "
            f"(stats: {stats})")
    if stats["dirty"]:
        raise _violation(
            report, "snapshot-epochs",
            "snapshot manager still dirty after the battery's reads "
            f"(stats: {stats})")
    if stats["retired"]:
        raise _violation(
            report, "snapshot-epochs",
            f"{stats['retired']} retired snapshot(s) never reclaimed "
            f"(stats: {stats})")


def run_scenario(seed: int, schedule: "str | dict" = "chaos",
                 ops: int = 40,
                 mix: str = "default") -> FaultRunReport:
    """One fault-injection scenario: workload, faults, invariants.

    ``schedule`` is a :data:`SCHEDULES` name or a raw failpoint spec
    (``"site=trigger;..."`` or a dict).  ``mix`` picks the workload
    shape (:data:`_MIXES`): ``"default"`` or ``"read-heavy"`` (mostly
    snapshot-path reads, for the publication/retirement seams).
    Schedules that arm a ``persistence.*`` site run against a
    *durable* service (write-ahead log and snapshots in a scratch
    directory) and additionally verify that a post-workload recovery
    reproduces a state consistent with its own commit log.  Raises
    :class:`InvariantViolation` when the battery fails; otherwise
    returns the :class:`FaultRunReport`.
    """
    if isinstance(schedule, str) and schedule in SCHEDULES:
        name, spec_text = schedule, SCHEDULES[schedule]
    elif isinstance(schedule, str):
        name, spec_text = schedule, schedule
    else:
        name = ";".join(f"{k}={v}" for k, v in schedule.items())
        spec_text = name
    spec = parse_schedule(spec_text)
    durable = any(site.startswith("persistence.") for site in spec)

    planner.clear_caches()
    schema = make_schema()
    pub_doc, rev_doc = _fresh_corpus(seed)
    state_dir = None
    if durable:
        state_dir = tempfile.mkdtemp(prefix="repro-faultcheck-")
        service = CheckingService.open_durable(
            schema, [pub_doc, rev_doc], state_dir,
            snapshot_interval=8)
    else:
        service = CheckingService(schema, [pub_doc, rev_doc])
    try:
        return _run_scenario_body(
            seed, name, spec_text, spec, ops, service, state_dir,
            mix=mix)
    finally:
        if state_dir is not None:
            service.close()
            shutil.rmtree(state_dir, ignore_errors=True)


def _run_scenario_body(seed: int, name: str, spec_text: str,
                       spec, ops: int, service: CheckingService,
                       state_dir: "str | None",
                       mix: str = "default") -> FaultRunReport:
    # the workload is generated against an untouched twin corpus so
    # faults cannot perturb which updates get generated
    _, rev_twin = _fresh_corpus(seed)

    observed: list[tuple[str, bool]] = []

    def listener(update, decision) -> None:
        observed.append(
            (canonical_update_text(update), decision.applied))

    service.subscribe(listener)

    report = FaultRunReport(seed=seed, schedule=name, spec=spec_text,
                            ops=ops, mix=mix)
    rng = random.Random(seed)
    kinds = _weighted_kinds(rng, ops, mix=mix)

    with fail.armed(spec) as handle:
        for index, kind in enumerate(kinds):
            step = _make_step(kind, rev_twin, rng)
            try:
                if step is None:
                    roll = rng.random()
                    if roll < 0.4:
                        service.verify_consistency()
                    elif roll < 0.8:
                        service.snapshot()
                    else:
                        # pinned view: two reads through one pin must
                        # see one coherent version
                        with service.read_view() as view:
                            verify_documents(service.checker.schema,
                                             list(view.documents))
                            for doc in view.documents:
                                serialize(doc)
                    outcome = "read"
                elif isinstance(step, list):
                    decisions = service.check_batch(step)
                    outcome = ("accepted" if any(
                        d.applied for d in decisions) else "rejected")
                else:
                    decision = service.try_execute(step)
                    outcome = ("accepted" if decision.applied
                               else "rejected")
            except Exception as exc:  # noqa: BLE001 — faults are Exception
                outcome = "errored"
                report.steps.append(StepOutcome(
                    index, kind, outcome, error=repr(exc)))
            else:
                report.steps.append(StepOutcome(index, kind, outcome))
        report.site_counts = dict(handle.counts())
        report.faults_fired = sum(
            fires for _, fires in report.site_counts.values())

    report.accepted = sum(1 for _, applied in observed if applied)
    report.rejected = sum(1 for _, applied in observed if not applied)
    report.errored = sum(
        1 for step in report.steps if step.outcome == "errored")

    # ---- invariant battery (fault-free from here on) -------------------
    _check_locks_released(service, report)

    accepted_texts = [text for text, applied in observed if applied]
    oracle_pub, oracle_rev = _run_oracle(seed, observed, report)

    live = service.snapshot()
    reference = [serialize(oracle_pub), serialize(oracle_rev)]
    if live != reference:
        raise _violation(
            report, "oracle-equality",
            "final store state differs from the fault-free replay of "
            f"the accepted updates ({len(accepted_texts)} accepted)")

    _check_tag_indexes(service.store.documents, report)
    _check_column_stores(service.store.documents, report)

    # the guard's full check runs through the planner's statistics and
    # plan caches; a cache poisoned by a mid-fault must not change the
    # verdict relative to a cache-free check on reparsed documents
    live_violations = service.verify_consistency()
    cold_docs = [parse_document(text) for text in live]
    cold_checker = BruteForceChecker(make_schema(), cold_docs)
    planner.clear_caches()
    cold_violations = cold_checker.check_only()
    if sorted(live_violations) != sorted(cold_violations):
        raise _violation(
            report, "cache-cold-rebuild",
            f"cached full check reports {live_violations!r} but a "
            f"cold check on the same state reports {cold_violations!r}")

    _check_commit_log(service, accepted_texts, report)
    _check_snapshot_epochs(service, report)

    if state_dir is not None:
        _check_durable_recovery(service, state_dir, accepted_texts,
                                seed, report)
    return report


def _check_durable_recovery(service: CheckingService, state_dir: str,
                            accepted: list[str], seed: int,
                            report) -> None:
    """Recovery from the scratch directory must reproduce the state.

    The recovered commit log must extend the accepted sequence by at
    most the one trailing record a crash can leave logged-but-
    unapplied, the recovered documents must equal a fault-free
    sequential replay of that log, and the full constraint check must
    be clean.
    """
    service.close()
    recovered = CheckingService.recover(make_schema(), state_dir)
    try:
        texts = [canonical_update_text(entry.update)
                 for entry in recovered.committed_updates()]
        if texts[:len(accepted)] != accepted \
                or len(texts) > len(accepted) + 1:
            raise _violation(
                report, "durable-recovery",
                f"recovered commit log ({len(texts)} entries) is not "
                f"the accepted sequence ({len(accepted)} entries) "
                "plus at most one trailing logged-but-unapplied "
                "record")
        pub_doc, rev_doc = _fresh_corpus(seed)
        oracle = BruteForceChecker(make_schema(), [pub_doc, rev_doc])
        for position, text in enumerate(texts):
            if not oracle.try_execute(text).applied:
                raise _violation(
                    report, "durable-recovery",
                    f"recovered commit-log entry #{position} is "
                    f"rejected by the fault-free oracle:\n{text}")
        reference = [serialize(pub_doc), serialize(rev_doc)]
        if recovered.snapshot() != reference:
            raise _violation(
                report, "durable-recovery",
                "recovered store differs from the sequential replay "
                f"of its own {len(texts)}-entry commit log")
        violations = recovered.verify_consistency()
        if violations:
            raise _violation(
                report, "durable-recovery",
                f"recovered store violates constraints: {violations}")
    finally:
        recovered.close()


def run_matrix(seeds: "list[int]", schedules: "list[str]",
               ops: int = 40, mix: str = "default",
               progress=None) -> list[FaultRunReport]:
    """Run every (seed, schedule) pair; raise on the first violation."""
    reports = []
    for schedule in schedules:
        for seed in seeds:
            report = run_scenario(seed, schedule, ops=ops, mix=mix)
            if progress is not None:
                progress(report)
            reports.append(report)
    return reports


# ---------------------------------------------------------------------------
# crash-restart harness
# ---------------------------------------------------------------------------


#: Kill sites for the restart matrix: each entry simulates the process
#: dying at one seam (the trigger picks a mid-workload occurrence),
#: after which :func:`run_restart_scenario` recovers from disk and
#: asserts the recovered state.  ``persistence.replay_record`` is the
#: recursive case — the crash happens *during recovery* and the retry
#: must succeed from the same snapshot and log.
RESTART_SITES: dict[str, str] = {
    "persistence.pre_fsync": "count:3",
    "persistence.post_append_pre_apply": "count:3",
    "persistence.snapshot_rename": "count:1",
    "persistence.replay_record": "count:2",
    "service.store.pre_commit_append": "count:3",
    "xupdate.apply.post_op": "count:5",
    "core.guard.post_check": "count:4",
}


@dataclass
class RestartRunReport:
    """Everything one :func:`run_restart_scenario` call observed."""

    seed: int
    site: str
    trigger: str
    ops: int
    accepted: int = 0
    rejected: int = 0
    errored: int = 0
    faults_fired: int = 0
    #: WAL tail records the final recovery replayed through the checker
    replayed: int = 0
    #: recovered commit-log entries beyond the listener-accepted prefix
    extra_committed: int = 0

    @property
    def repro_command(self) -> str:
        """Shell command that reruns this exact scenario."""
        return (f"python -m repro faultcheck --crash-restart "
                f"--seed {self.seed} --site {self.site} "
                f"--ops {self.ops}")

    def summary(self) -> str:
        return (f"seed={self.seed} site={self.site} "
                f"trigger={self.trigger} ops={self.ops}: "
                f"{self.accepted} accepted, {self.rejected} rejected, "
                f"{self.errored} errored, {self.faults_fired} faults "
                f"fired, {self.replayed} replayed, "
                f"{self.extra_committed} extra committed")


def run_restart_scenario(seed: int, site: str,
                         ops: int = 40) -> RestartRunReport:
    """Kill the durable service at ``site``, restart, and verify.

    Runs the standard workload against a durable service with the kill
    site armed, treats the injected fault as the process dying (the
    write-ahead log freezes itself at persistence seams), then
    recovers from the on-disk state and asserts:

    * the recovered commit log is the listener-accepted sequence plus
      at most one trailing logged-but-unapplied record;
    * the recovered documents are byte-identical to a fault-free
      sequential oracle replay of that commit log;
    * the full constraint check, the incremental tag indexes and the
      column stores are clean on the recovered state;
    * a second recovery from the same directory is deterministic
      (byte-identical state and commit log);
    * the recovered service still accepts new updates (liveness).
    """
    trigger = RESTART_SITES.get(site, "count:3")
    report = RestartRunReport(seed=seed, site=site, trigger=trigger,
                              ops=ops)
    state_dir = tempfile.mkdtemp(prefix="repro-restart-")
    try:
        _run_restart_body(seed, site, trigger, ops, state_dir, report)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
    return report


def _run_restart_body(seed: int, site: str, trigger: str, ops: int,
                      state_dir: str,
                      report: RestartRunReport) -> None:
    planner.clear_caches()
    schema = make_schema()
    pub_doc, rev_doc = _fresh_corpus(seed)
    # the replay_record site fires during recovery, not the workload:
    # build the pre-crash state fault-free with a wide-open snapshot
    # interval so the WAL tail is long enough to die in the middle of
    replay_site = site == "persistence.replay_record"
    interval = 10 ** 6 if replay_site else 8
    service = CheckingService.open_durable(
        schema, [pub_doc, rev_doc], state_dir,
        snapshot_interval=interval)

    _, rev_twin = _fresh_corpus(seed)
    observed: list[tuple[str, bool]] = []

    def listener(update, decision) -> None:
        observed.append(
            (canonical_update_text(update), decision.applied))

    service.subscribe(listener)
    rng = random.Random(seed)
    kinds = _weighted_kinds(rng, ops)

    workload_spec = {} if replay_site else {site: trigger}
    with fail.armed(workload_spec) as handle:
        for kind in kinds:
            step = _make_step(kind, rev_twin, rng)
            try:
                if step is None:
                    service.verify_consistency()
                elif isinstance(step, list):
                    service.check_batch(step)
                else:
                    service.try_execute(step)
            except Exception:  # noqa: BLE001 — faults are Exception
                report.errored += 1
        report.faults_fired = sum(
            fires for _, (_, fires) in handle.counts().items())
    service.close()

    report.accepted = sum(1 for _, applied in observed if applied)
    report.rejected = sum(1 for _, applied in observed if not applied)
    accepted = [text for text, applied in observed if applied]

    if replay_site:
        # recovery itself dies at the armed site ...
        with fail.armed({site: trigger}) as handle:
            try:
                crashed = CheckingService.recover(schema, state_dir)
            except Exception:  # noqa: BLE001 — faults are Exception
                pass
            else:
                crashed.close()
                raise _violation(
                    report, "restart-recovery",
                    f"armed recovery at {site} completed without the "
                    "fault firing")
            report.faults_fired = sum(
                fires for _, (_, fires) in handle.counts().items())
        # ... and the retry must succeed from the same snapshot + log

    recovered = CheckingService.recover(schema, state_dir)
    try:
        _check_recovered_state(recovered, accepted, seed, report)
        first_snapshot = recovered.snapshot()
        first_log = [canonical_update_text(entry.update)
                     for entry in recovered.committed_updates()]
    finally:
        recovered.close()

    # second recovery: determinism, then liveness on the result
    again = CheckingService.recover(schema, state_dir)
    try:
        if again.snapshot() != first_snapshot or first_log != [
                canonical_update_text(entry.update)
                for entry in again.committed_updates()]:
            raise _violation(
                report, "restart-determinism",
                "two recoveries from the same directory disagree")
        probe = _pub_xupdate(
            [f"Post Restart {seed}", f"Probe Author {seed}"])
        decision = again.try_execute(probe)
        if not decision.applied:
            raise _violation(
                report, "restart-liveness",
                "recovered service rejected an always-legal update: "
                f"{decision.violated}")
    finally:
        again.close()


def _check_recovered_state(recovered: CheckingService,
                           accepted: list[str], seed: int,
                           report: RestartRunReport) -> None:
    info = recovered.last_recovery
    assert info is not None
    report.replayed = info.replayed
    texts = [canonical_update_text(entry.update)
             for entry in recovered.committed_updates()]
    report.extra_committed = len(texts) - len(accepted)
    if texts[:len(accepted)] != accepted \
            or len(texts) > len(accepted) + 1:
        raise _violation(
            report, "restart-commit-log",
            f"recovered commit log ({len(texts)} entries) is not the "
            f"accepted sequence ({len(accepted)} entries) plus at "
            "most one trailing logged-but-unapplied record")
    pub_doc, rev_doc = _fresh_corpus(seed)
    oracle = BruteForceChecker(make_schema(), [pub_doc, rev_doc])
    for position, text in enumerate(texts):
        if not oracle.try_execute(text).applied:
            raise _violation(
                report, "restart-oracle",
                f"recovered commit-log entry #{position} is rejected "
                f"by the fault-free oracle:\n{text}")
    if recovered.snapshot() != [serialize(pub_doc),
                                serialize(rev_doc)]:
        raise _violation(
            report, "restart-oracle",
            "recovered store differs from the sequential oracle "
            f"replay of its own {len(texts)}-entry commit log")
    violations = recovered.verify_consistency()
    if violations:
        raise _violation(
            report, "restart-consistency",
            f"recovered store violates constraints: {violations}")
    _check_tag_indexes(recovered.store.documents, report)
    _check_column_stores(recovered.store.documents, report)


def run_restart_matrix(seeds: "list[int]",
                       sites: "list[str] | None" = None,
                       ops: int = 40,
                       progress=None) -> list[RestartRunReport]:
    """Run every (seed, kill-site) pair; raise on first violation."""
    reports = []
    for site in (sites if sites is not None
                 else sorted(RESTART_SITES)):
        for seed in seeds:
            report = run_restart_scenario(seed, site, ops=ops)
            if progress is not None:
                progress(report)
            reports.append(report)
    return reports
