"""Abstract syntax of XPathLog constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class Step:
    """One axis step of a path expression.

    ``axis`` is one of ``child``, ``descendant``, ``attribute``,
    ``parent``, ``text`` and ``position`` (the last two model the
    ``text()`` and ``position()`` node functions as steps, following the
    paper's usage ``.../name/text() → R``).  ``nodetest`` is the element
    or attribute name (``None`` for ``text``/``position`` steps).
    ``binding`` is the variable bound with ``→ Var``, if any.
    ``qualifiers`` are the bracketed conditions applied to the selection.
    """

    axis: str
    nodetest: str | None = None
    qualifiers: tuple["Condition", ...] = ()
    binding: str | None = None

    def __str__(self) -> str:
        if self.axis == "text":
            base = "text()"
        elif self.axis == "position":
            base = "position()"
        elif self.axis == "parent":
            base = ".."
        elif self.axis == "attribute":
            base = f"@{self.nodetest}"
        else:
            base = self.nodetest or "*"
        for qualifier in self.qualifiers:
            base += f"[{qualifier}]"
        if self.binding is not None:
            base += f" → {self.binding}"
        return base


@dataclass(frozen=True)
class PathExpression:
    """A path: ``absolute`` when anchored at the document root.

    ``descendant_flags[i]`` tells whether step *i* was reached with
    ``//`` (descendant-or-self) rather than ``/``.
    """

    steps: tuple[Step, ...]
    absolute: bool
    descendant_flags: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.steps) != len(self.descendant_flags):
            raise ValueError("one descendant flag per step is required")

    def __str__(self) -> str:
        parts: list[str] = []
        for index, (step, descendant) in enumerate(
                zip(self.steps, self.descendant_flags)):
            if index == 0 and not self.absolute:
                separator = "//" if descendant else ""
            else:
                separator = "//" if descendant else "/"
            parts.append(separator + str(step))
        return "".join(parts)


# -- comparison operands -----------------------------------------------------

@dataclass(frozen=True)
class VariableOperand:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstantOperand:
    value: str | int | float

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class PathOperand:
    """A (relative) path used as a comparison operand, e.g.
    ``[title = "Duckburg tales"]``."""

    path: PathExpression

    def __str__(self) -> str:
        return str(self.path)


Operand = Union[VariableOperand, ConstantOperand, PathOperand]


# -- conditions ---------------------------------------------------------------

@dataclass(frozen=True)
class PathCondition:
    """An existential path condition (possibly with bindings inside)."""

    path: PathExpression

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class ComparisonCondition:
    op: str  # "eq", "ne", "lt", "le", "gt", "ge"
    left: Operand
    right: Operand

    _SYMBOLS = {"eq": "=", "ne": "≠", "lt": "<", "le": "≤", "gt": ">",
                "ge": "≥"}

    def __str__(self) -> str:
        return f"{self.left} {self._SYMBOLS[self.op]} {self.right}"


@dataclass(frozen=True)
class AggregateComparison:
    """``Cnt_D{Term [G1,...,Gn]; path} op bound`` (section 3.1).

    ``term`` is the aggregated variable (``None`` for ``Cnt``/``Cnt_D``,
    which count the selected nodes); ``group_by`` are the group-by
    variable names, shared with the enclosing constraint body.
    """

    func: str  # "cnt", "sum", "max", "min", "avg"
    distinct: bool
    term: str | None
    group_by: tuple[str, ...]
    path: PathExpression
    op: str
    bound: int | float | str

    def __str__(self) -> str:
        name = self.func.capitalize() + ("D" if self.distinct else "")
        term = "" if self.term is None else f"{self.term} "
        groups = ",".join(self.group_by)
        symbol = ComparisonCondition._SYMBOLS[self.op]
        return (f"{name}{{{term}[{groups}]; {self.path}}} "
                f"{symbol} {self.bound}")


@dataclass(frozen=True)
class PredicateCall:
    """A call to a *view* — a named rule defined with a head
    (``coauthor(A, B) <- ...``, section 3.1's Horn clauses).

    Arguments are variables or constants; the call unfolds into the
    view's body at compile time (views are non-recursive).
    """

    name: str
    args: tuple["Operand", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class NotCondition:
    """Negation: ``not(...)`` / ``¬(...)``.

    Negated paths compile to negated existential subqueries; negated
    comparisons and aggregates are rewritten to their complementary
    operators; boolean structure is pushed inward by De Morgan during
    normalization.
    """

    item: "Condition"

    def __str__(self) -> str:
        return f"¬({self.item})"


@dataclass(frozen=True)
class AndCondition:
    items: tuple["Condition", ...]

    def __str__(self) -> str:
        return " ∧ ".join(
            f"({item})" if isinstance(item, OrCondition) else str(item)
            for item in self.items)


@dataclass(frozen=True)
class OrCondition:
    items: tuple["Condition", ...]

    def __str__(self) -> str:
        return " ∨ ".join(str(item) for item in self.items)


Condition = Union[PathCondition, ComparisonCondition, AggregateComparison,
                  AndCondition, OrCondition, NotCondition, PredicateCall]


@dataclass(frozen=True)
class Constraint:
    """An XPathLog denial: ``← body``."""

    body: Condition
    #: the original source text, when produced by the parser
    source: str | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"← {self.body}"


@dataclass(frozen=True)
class Rule:
    """A Horn clause with a head: a view definition.

    ``head_name(head_params) <- body``; the body is any condition
    without disjunction (one conjunct) so calls unfold into a single
    literal list.
    """

    head_name: str
    head_params: tuple[str, ...]
    body: Condition
    source: str | None = field(default=None, compare=False)

    def __str__(self) -> str:
        params = ", ".join(self.head_params)
        return f"{self.head_name}({params}) ← {self.body}"


def normalize_disjuncts(condition: Condition) -> list[list[Condition]]:
    """Disjunctive normal form of a condition tree.

    Returns a list of conjunctions, each a list of atomic conditions
    (path / comparison / aggregate).  Disjunctions nested inside path
    qualifiers are hoisted by splitting the enclosing path condition
    into one variant per combination (footnote 3 of the paper reduces
    every denial to this normal form).
    """
    if isinstance(condition, AndCondition):
        result: list[list[Condition]] = [[]]
        for item in condition.items:
            item_dnf = normalize_disjuncts(item)
            result = [
                existing + branch
                for existing in result
                for branch in item_dnf
            ]
        return result
    if isinstance(condition, OrCondition):
        result = []
        for item in condition.items:
            result.extend(normalize_disjuncts(item))
        return result
    if isinstance(condition, PathCondition):
        return [
            [PathCondition(variant)]
            for variant in _path_variants(condition.path)
        ]
    if isinstance(condition, ComparisonCondition):
        variants: list[list[Condition]] = [[]]
        for operand in (condition.left, condition.right):
            if isinstance(operand, PathOperand):
                operand_variants = _path_variants(operand.path)
            else:
                operand_variants = [None]  # type: ignore[list-item]
            variants = [
                existing + [variant]  # type: ignore[list-item]
                for existing in variants
                for variant in operand_variants
            ]
        results = []
        for combo in variants:
            left = PathOperand(combo[0]) if combo[0] is not None \
                else condition.left
            right = PathOperand(combo[1]) if combo[1] is not None \
                else condition.right
            results.append(
                [ComparisonCondition(condition.op, left, right)])
        return results
    if isinstance(condition, AggregateComparison):
        return [
            [AggregateComparison(condition.func, condition.distinct,
                                 condition.term, condition.group_by,
                                 variant, condition.op, condition.bound)]
            for variant in _path_variants(condition.path)
        ]
    if isinstance(condition, PredicateCall):
        return [[condition]]
    if isinstance(condition, NotCondition):
        return _normalize_negation(condition.item)
    raise TypeError(f"unknown condition kind: {condition!r}")


_NEGATED_OPS = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                "gt": "le", "le": "gt"}


def _normalize_negation(item: "Condition") -> list[list["Condition"]]:
    """DNF of ``¬item``: push the negation inward."""
    if isinstance(item, NotCondition):
        return normalize_disjuncts(item.item)
    if isinstance(item, AndCondition):
        # ¬(A ∧ B) = ¬A ∨ ¬B
        result: list[list[Condition]] = []
        for sub in item.items:
            result.extend(_normalize_negation(sub))
        return result
    if isinstance(item, OrCondition):
        # ¬(A ∨ B) = ¬A ∧ ¬B
        combined: list[list[Condition]] = [[]]
        for sub in item.items:
            sub_dnf = _normalize_negation(sub)
            combined = [
                existing + branch
                for existing in combined
                for branch in sub_dnf
            ]
        return combined
    if isinstance(item, ComparisonCondition):
        return [[ComparisonCondition(_NEGATED_OPS[item.op], item.left,
                                     item.right)]]
    if isinstance(item, AggregateComparison):
        return [[AggregateComparison(item.func, item.distinct, item.term,
                                     item.group_by, item.path,
                                     _NEGATED_OPS[item.op], item.bound)]]
    if isinstance(item, PathCondition):
        # ¬(p1 ∨ p2 ∨ ...) over qualifier variants: conjunction of ¬pi
        variants = _path_variants(item.path)
        return [[NotCondition(PathCondition(variant))
                 for variant in variants]]
    if isinstance(item, PredicateCall):
        return [[NotCondition(item)]]
    raise TypeError(f"unknown condition kind: {item!r}")


def _path_variants(path: PathExpression) -> list[PathExpression]:
    """Split a path whose qualifiers contain disjunctions into variants."""
    step_variant_lists: list[list[Step]] = []
    for step in path.steps:
        qualifier_dnf_lists: list[list[list[Condition]]] = [
            normalize_disjuncts(qualifier) for qualifier in step.qualifiers]
        combos: list[tuple[Condition, ...]] = [()]
        for dnf in qualifier_dnf_lists:
            combos = [
                existing + tuple(branch)
                for existing in combos
                for branch in dnf
            ]
        step_variant_lists.append([
            Step(step.axis, step.nodetest, combo, step.binding)
            for combo in combos
        ])
    variants: list[tuple[Step, ...]] = [()]
    for step_variants in step_variant_lists:
        variants = [
            existing + (variant,)
            for existing in variants
            for variant in step_variants
        ]
    return [
        PathExpression(steps, path.absolute, path.descendant_flags)
        for steps in variants
    ]
