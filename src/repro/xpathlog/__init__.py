"""XPathLog: the constraint-specification language (section 3.1).

XPathLog [May 2004] extends XPath path expressions with variable
bindings (``→ Var``) and embeds them in a Horn-clause logic; integrity
constraints are *denials* — headless clauses whose body must never be
satisfiable.  This package provides a parser for the fragment used in
the paper (path expressions over child/descendant/attribute/parent
axes, ``text()`` and ``position()``, qualifiers, comparisons,
disjunction, and the ``Cnt``/``Cnt_D``/``Sum``/... aggregates) and the
compiler of section 4.2 that maps an XPathLog denial to a set of
Datalog denials over the relational schema (one denial per disjunct of
the disjunctive normal form, per footnote 3).
"""

from repro.xpathlog.ast import (
    AggregateComparison,
    AndCondition,
    ComparisonCondition,
    Condition,
    ConstantOperand,
    Constraint,
    OrCondition,
    PathCondition,
    PathExpression,
    PathOperand,
    Step,
    VariableOperand,
)
from repro.xpathlog.parser import (parse_constraint, parse_path,
                                   parse_rule)
from repro.xpathlog.compile import (CompiledView, compile_constraint,
                                    compile_rule)

__all__ = [
    "AggregateComparison",
    "AndCondition",
    "ComparisonCondition",
    "Condition",
    "ConstantOperand",
    "Constraint",
    "OrCondition",
    "PathCondition",
    "PathExpression",
    "PathOperand",
    "Step",
    "VariableOperand",
    "parse_constraint",
    "parse_path",
    "parse_rule",
    "CompiledView",
    "compile_constraint",
    "compile_rule",
]
