"""Compilation of XPathLog denials to Datalog denials (section 4.2).

Each disjunct of the constraint's disjunctive normal form yields one
Datalog denial.  Path expressions generate chains of atoms over the
predicates of the traversed node types; parent-child containment
becomes equality between the id of the container and the third argument
(``parent``) of the contained atom.  Text of inlined children maps to
value columns, ``position()`` to the second argument.

The compiler emits one fresh anonymous variable per unconstrained
column and records bindings/filters as equations; a final
equality-folding pass substitutes them away, yielding denials in the
compact form of example 3 (e.g. constants sit directly inside atom
arguments, ``← pub(Ip,_,_,"Duckburg tales") ∧ aut(_,_,Ip,"Goofy")``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.atoms import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Literal,
    Negation,
    comparison_truth,
)
from repro.datalog.denial import Denial
from repro.datalog.subst import Substitution
from repro.datalog.terms import (
    Constant,
    Term,
    Variable,
    fresh_variable,
    is_anonymous,
)
from repro.errors import CompilationError
from repro.relational.prune import prune_implied_parent_atoms
from repro.relational.schema import RelationalSchema
from repro.xpathlog.ast import (
    AggregateComparison,
    ComparisonCondition,
    Condition,
    ConstantOperand,
    Constraint,
    NotCondition,
    Operand,
    PathCondition,
    PathExpression,
    PathOperand,
    PredicateCall,
    Rule,
    Step,
    VariableOperand,
    normalize_disjuncts,
)


@dataclass
class _Context:
    """Where a partially compiled path currently stands.

    * ``kind == "root"`` — at a document root (``tag`` is the root tag,
      or ``None`` for "any document");
    * ``kind == "node"`` — at an element with a predicate; ``id_var`` is
      the variable holding its node id and ``atom`` its atom;
    * ``kind == "value"`` — at a character-data or attribute value
      (inlined column, ``text()`` result, ``position()`` result,
      attribute); ``value_var`` holds the value.
    """

    kind: str
    tag: str | None = None
    id_var: Variable | None = None
    atom: Atom | None = None
    value_var: Variable | None = None


@dataclass
class _Scope:
    """Literal accumulator for one denial (or one aggregate body)."""

    schema: RelationalSchema
    variables: dict[str, Variable]
    literals: list[Literal] = field(default_factory=list)
    #: id var → atom, for parent-step reuse
    atoms_by_id: dict[Variable, Atom] = field(default_factory=dict)

    def anonymous(self) -> Variable:
        return fresh_variable("_")

    def user_variable(self, name: str) -> Variable:
        if name not in self.variables:
            self.variables[name] = Variable(name)
        return self.variables[name]

    def new_atom(self, tag: str, parent_term: Term) -> tuple[Atom, Variable]:
        predicate = self.schema.predicate_for(tag)
        id_var = fresh_variable("I" + tag[:1])
        args: list[Term] = [id_var, self.anonymous(), parent_term]
        args.extend(self.anonymous() for _ in predicate.value_columns())
        atom = Atom(tag, tuple(args))
        self.literals.append(atom)
        self.atoms_by_id[id_var] = atom
        return atom, id_var

    def atom_for_id(self, tag: str, id_term: Term) -> tuple[Atom, Term]:
        """Find or create the atom describing the node with id ``id_term``."""
        if isinstance(id_term, Variable) and id_term in self.atoms_by_id:
            return self.atoms_by_id[id_term], id_term
        predicate = self.schema.predicate_for(tag)
        args: list[Term] = [id_term, self.anonymous(), self.anonymous()]
        args.extend(self.anonymous() for _ in predicate.value_columns())
        atom = Atom(tag, tuple(args))
        self.literals.append(atom)
        if isinstance(id_term, Variable):
            self.atoms_by_id[id_term] = atom
        return atom, id_term

    def equate(self, left: Term, right: Term) -> None:
        if left != right:
            self.literals.append(Comparison("eq", left, right))


@dataclass(frozen=True)
class CompiledView:
    """A compiled view: parameters plus the unfoldable body literals."""

    name: str
    params: tuple[Variable, ...]
    literals: tuple[Literal, ...]

    def arity(self) -> int:
        return len(self.params)


class _Compiler:
    def __init__(self, schema: RelationalSchema,
                 views: "dict[str, CompiledView] | None" = None) -> None:
        self.schema = schema
        self.views = views or {}

    # -- conditions -----------------------------------------------------------

    def compile_conjunct(self, conditions: list[Condition],
                         variables: dict[str, Variable]) -> list[Literal]:
        scope = _Scope(self.schema, variables)
        for condition in conditions:
            self.compile_condition(condition, scope, context=None)
        return scope.literals

    def compile_condition(self, condition: Condition, scope: _Scope,
                          context: _Context | None) -> None:
        if isinstance(condition, PathCondition):
            self.compile_path(condition.path, scope, context)
        elif isinstance(condition, ComparisonCondition):
            left = self.compile_operand(condition.left, scope, context)
            right = self.compile_operand(condition.right, scope, context)
            scope.literals.append(Comparison(condition.op, left, right))
        elif isinstance(condition, AggregateComparison):
            scope.literals.append(
                self.compile_aggregate(condition, scope, context))
        elif isinstance(condition, NotCondition):
            scope.literals.append(
                self.compile_negation(condition, scope, context))
        elif isinstance(condition, PredicateCall):
            scope.literals.extend(self.unfold_view(condition, scope))
        else:
            raise CompilationError(
                f"nested boolean structure must be normalized away before "
                f"compilation: {condition}")

    def compile_operand(self, operand: Operand, scope: _Scope,
                        context: _Context | None) -> Term:
        if isinstance(operand, ConstantOperand):
            return Constant(operand.value)
        if isinstance(operand, VariableOperand):
            return scope.user_variable(operand.name)
        assert isinstance(operand, PathOperand)
        result = self.compile_path(operand.path, scope, context)
        return self.context_value(result, operand.path)

    def context_value(self, context: _Context, path: PathExpression) -> Term:
        """The comparable value of a path result.

        Value contexts compare by their character data; node contexts of
        a type with a text column compare by text; other nodes compare
        by node identity (their id).
        """
        if context.kind == "value":
            assert context.value_var is not None
            return context.value_var
        if context.kind == "node":
            assert context.atom is not None and context.tag is not None
            predicate = self.schema.predicate_for(context.tag)
            if predicate.has_text_column():
                return context.atom.args[predicate.text_index()]
            assert context.id_var is not None
            return context.id_var
        raise CompilationError(
            f"path {path} selects a document root and cannot be compared")

    # -- paths ------------------------------------------------------------------

    def compile_path(self, path: PathExpression, scope: _Scope,
                     context: _Context | None) -> _Context:
        if path.absolute or context is None:
            current = _Context("root", tag=None)
        else:
            current = context
        for step, descendant in zip(path.steps, path.descendant_flags):
            current = self.compile_step(step, descendant, scope, current)
        return current

    def compile_step(self, step: Step, descendant: bool, scope: _Scope,
                     context: _Context) -> _Context:
        if step.axis in ("child", "descendant"):
            result = self.navigate(context, step.nodetest or "", descendant,
                                   scope)
        elif step.axis == "parent":
            result = self.navigate_parent(context, scope)
        elif step.axis == "attribute":
            result = self.attribute_value(context, step.nodetest or "", scope)
        elif step.axis == "text":
            result = self.text_value(context, scope)
        elif step.axis == "position":
            result = self.position_value(context)
        else:
            raise CompilationError(f"unsupported axis {step.axis!r}")
        for qualifier in step.qualifiers:
            self.compile_condition(qualifier, scope, result)
        if step.binding is not None:
            self.bind_variable(step.binding, result, scope)
        return result

    def navigate(self, context: _Context, tag: str, descendant: bool,
                 scope: _Scope) -> _Context:
        if context.kind == "value":
            raise CompilationError(
                f"cannot navigate into {tag!r} from a text or attribute value")
        if context.kind == "root":
            return self.navigate_from_root(context, tag, descendant, scope)
        assert context.kind == "node" and context.tag is not None
        assert context.id_var is not None
        if self.schema.is_inlined(context.tag, tag):
            predicate = self.schema.predicate_for(context.tag)
            index = predicate.text_child_index(tag)
            assert context.atom is not None
            return _Context("value", tag=tag,
                            value_var=self.column_var(context.atom, index,
                                                      scope))
        if self.schema.has_predicate(tag) and context.tag in \
                self.schema.predicate_for(tag).parent_tags:
            atom, id_var = scope.new_atom(tag, context.id_var)
            return _Context("node", tag=tag, id_var=id_var, atom=atom)
        if descendant:
            return self.navigate_chain(context, tag, scope)
        raise CompilationError(
            f"{tag!r} is not a child node type of {context.tag!r}",
            code="XIC103")

    def navigate_from_root(self, context: _Context, tag: str,
                           descendant: bool, scope: _Scope) -> _Context:
        if self.schema.is_root(tag):
            if context.tag is not None:
                raise CompilationError(
                    f"root {tag!r} cannot occur under {context.tag!r}")
            return _Context("root", tag=tag)
        if self.schema.has_predicate(tag):
            if not descendant and context.tag is not None:
                parents = self.schema.predicate_for(tag).parent_tags
                if context.tag not in parents:
                    raise CompilationError(
                        f"{tag!r} is not a child of root {context.tag!r}")
            # the parent column is unconstrained: in a fixed schema the
            # ancestry of a node type is determined by the DTD
            atom, id_var = scope.new_atom(tag, scope.anonymous())
            return _Context("node", tag=tag, id_var=id_var, atom=atom)
        parents = [parent for (parent, child) in self.schema.inlined
                   if child == tag]
        if len(parents) == 1 and descendant:
            parent_context = self.navigate_from_root(context, parents[0],
                                                     True, scope)
            return self.navigate(parent_context, tag, False, scope)
        raise CompilationError(
            f"cannot resolve //{tag}: node type unknown or reachable "
            "through multiple parents",
            code=None if self.schema.knows_tag(tag) else "XIC101")

    def navigate_chain(self, context: _Context, tag: str,
                       scope: _Scope) -> _Context:
        """Descendant navigation: find the unique tag chain and emit it."""
        assert context.tag is not None
        chains = self.chains_between(context.tag, tag)
        if not chains:
            raise CompilationError(
                f"no descendant chain from {context.tag!r} to {tag!r}",
                code="XIC103")
        if len(chains) > 1:
            raise CompilationError(
                f"descendant step //{tag} from {context.tag!r} is ambiguous: "
                + "; ".join("/".join(chain) for chain in chains))
        current = context
        for link in chains[0]:
            current = self.navigate(current, link, False, scope)
        return current

    def chains_between(self, ancestor: str, target: str) -> list[list[str]]:
        """All predicate chains ``ancestor / ... / target``."""
        results: list[list[str]] = []

        def explore(tag: str, suffix: list[str]) -> None:
            if self.schema.has_predicate(tag):
                for parent in self.schema.predicate_for(tag).parent_tags:
                    if parent == ancestor:
                        results.append([tag] + suffix)
                    elif not self.schema.is_root(parent):
                        explore(parent, [tag] + suffix)
            else:
                for (parent, child) in self.schema.inlined:
                    if child == tag:
                        if parent == ancestor:
                            results.append([tag] + suffix)
                        else:
                            explore(parent, [tag] + suffix)

        explore(target, [])
        return results

    def navigate_parent(self, context: _Context, scope: _Scope) -> _Context:
        if context.kind != "node" or context.atom is None \
                or context.tag is None:
            raise CompilationError("'..' requires an element context")
        parents = self.schema.predicate_for(context.tag).parent_tags
        if len(parents) != 1:
            raise CompilationError(
                f"parent of {context.tag!r} is ambiguous: {parents}")
        parent_tag = parents[0]
        parent_term = context.atom.args[2]
        if self.schema.is_root(parent_tag):
            return _Context("root", tag=parent_tag)
        atom, id_term = scope.atom_for_id(parent_tag, parent_term)
        id_var = id_term if isinstance(id_term, Variable) else None
        return _Context("node", tag=parent_tag, id_var=id_var, atom=atom)

    def attribute_value(self, context: _Context, attribute: str,
                        scope: _Scope) -> _Context:
        if context.kind != "node" or context.atom is None \
                or context.tag is None:
            raise CompilationError("'@' requires an element context")
        predicate = self.schema.predicate_for(context.tag)
        index = predicate.attribute_index(attribute)
        return _Context("value", tag=context.tag,
                        value_var=self.column_var(context.atom, index, scope))

    def text_value(self, context: _Context, scope: _Scope) -> _Context:
        if context.kind == "value":
            return context  # text() of an inlined child is its column
        if context.kind == "node" and context.tag is not None:
            predicate = self.schema.predicate_for(context.tag)
            if predicate.has_text_column():
                assert context.atom is not None
                return _Context(
                    "value", tag=context.tag,
                    value_var=self.column_var(
                        context.atom, predicate.text_index(), scope))
        raise CompilationError(
            f"text() is not available at {context.tag!r}", code="XIC104")

    def position_value(self, context: _Context) -> _Context:
        if context.kind != "node" or context.atom is None:
            raise CompilationError("position() requires an element context")
        position = context.atom.args[1]
        if not isinstance(position, Variable):
            raise CompilationError("position() column is not a variable")
        return _Context("value", tag=context.tag, value_var=position)

    def column_var(self, atom: Atom, index: int, scope: _Scope) -> Variable:
        term = atom.args[index]
        if isinstance(term, Variable):
            return term
        # the column already holds a constant: introduce an alias
        alias = scope.anonymous()
        scope.equate(alias, term)
        return alias

    def bind_variable(self, name: str, context: _Context,
                      scope: _Scope) -> None:
        variable = scope.user_variable(name)
        if context.kind == "value":
            assert context.value_var is not None
            scope.equate(context.value_var, variable)
        elif context.kind == "node":
            assert context.id_var is not None
            scope.equate(context.id_var, variable)
        else:
            raise CompilationError(
                "cannot bind a variable to a document root")

    # -- views ---------------------------------------------------------------------

    def unfold_view(self, call: PredicateCall,
                    scope: _Scope) -> list[Literal]:
        """Inline a view call: rename the body apart, bind parameters.

        Views are compiled once (see :func:`compile_rule`) and unfold
        to plain literals, so the whole simplification and translation
        machinery applies to constraints over views for free.
        """
        view = self.views.get(call.name)
        if view is None:
            raise CompilationError(
                f"unknown view {call.name!r}; known views: "
                + (", ".join(sorted(self.views)) or "none"))
        if len(call.args) != view.arity():
            raise CompilationError(
                f"view {call.name!r} takes {view.arity()} arguments, "
                f"got {len(call.args)}")
        view_vars: set[Variable] = set()
        for literal in view.literals:
            view_vars |= literal.variables()
        view_vars |= set(view.params)
        renaming = Substitution({
            var: fresh_variable(var.name.split("#")[0])
            for var in sorted(view_vars, key=lambda v: v.name)
        })
        binding = Substitution()
        for param, arg in zip(view.params, call.args):
            renamed = renaming.apply_term(param)
            assert isinstance(renamed, Variable)
            if isinstance(arg, VariableOperand):
                term: Term = scope.user_variable(arg.name)
            elif isinstance(arg, ConstantOperand):
                term = Constant(arg.value)
            else:
                raise CompilationError(
                    "view-call arguments must be variables or literals")
            binding = binding.bind(renamed, term)
        return [
            binding.apply_literal(renaming.apply_literal(literal))
            for literal in view.literals
        ]

    # -- negations -------------------------------------------------------------------

    def compile_negation(self, condition: NotCondition, scope: _Scope,
                         context: _Context | None) -> Negation:
        """Compile ``not(path)`` into a negated existential subquery.

        Negated comparisons/aggregates/boolean structure never reach
        the compiler — DNF normalization rewrites them — so the inner
        condition here is a path (possibly with qualifiers).  The inner
        path is compiled in a nested scope: variables shared with the
        outer body resolve to the same Datalog variables, variables
        first bound inside stay local (existentially quantified under
        the negation).
        """
        inner = condition.item
        if isinstance(inner, PredicateCall):
            literals = self.unfold_view(inner, scope)
            body: list[Literal] = []
            for literal in literals:
                if isinstance(literal, (Atom, Comparison)):
                    body.append(literal)
                else:
                    raise CompilationError(
                        f"negated view {inner.name!r} must unfold to "
                        "atoms and comparisons only")
            if not body:
                raise CompilationError(
                    f"negated view {inner.name!r} has an empty body")
            return Negation(tuple(body))
        if not isinstance(inner, PathCondition):
            raise CompilationError(
                f"unnormalized negation reached the compiler: {condition}")
        inner_scope = _Scope(self.schema, dict(scope.variables))
        self.compile_path(inner.path, inner_scope, context)
        folded, _ = fold_equalities(inner_scope.literals)
        body: list[Literal] = []
        for literal in folded:
            if isinstance(literal, (Atom, Comparison)):
                body.append(literal)
            else:
                raise CompilationError(
                    "negations may contain only paths and comparisons; "
                    f"found {literal}")
        if not body:
            raise CompilationError(
                f"negated path {inner.path} compiled to an empty body")
        return Negation(tuple(body))

    # -- aggregates ----------------------------------------------------------------

    def compile_aggregate(self, condition: AggregateComparison, scope: _Scope,
                          context: _Context | None) -> AggregateCondition:
        inner = _Scope(self.schema, variables={})
        group_terms: list[Term] = []
        for name in condition.group_by:
            outer_var = scope.user_variable(name)
            inner.variables[name] = outer_var
            group_terms.append(outer_var)
        if context is not None:
            raise CompilationError(
                "aggregates inside qualifiers are not supported")
        result = self.compile_path(condition.path, inner, None)
        if condition.term is not None:
            term: Term | None = inner.user_variable(condition.term)
        elif condition.distinct or condition.func != "cnt":
            term = self.context_value_for_aggregate(result)
        else:
            term = None
        literals, folding = fold_equalities(inner.literals)
        atoms: list[Atom] = []
        for literal in literals:
            if isinstance(literal, Atom):
                atoms.append(literal)
            else:
                raise CompilationError(
                    "aggregate bodies must reduce to a conjunction of "
                    f"atoms; residual condition: {literal}")
        if term is not None:
            term = folding.apply_term(term)
        group_terms = [folding.apply_term(group) for group in group_terms]
        aggregate = Aggregate(condition.func,
                              condition.distinct,
                              term,
                              tuple(group_terms),
                              tuple(atoms))
        return AggregateCondition(aggregate, condition.op,
                                  Constant(condition.bound))

    def context_value_for_aggregate(self, context: _Context) -> Term:
        if context.kind == "node":
            assert context.id_var is not None
            return context.id_var
        if context.kind == "value":
            assert context.value_var is not None
            return context.value_var
        raise CompilationError("cannot aggregate over document roots")


def fold_equalities(
        literals: list[Literal]) -> tuple[list[Literal], Substitution]:
    """Substitute away ``Var = term`` equations and drop trivial ones.

    Prefers eliminating compiler-generated (anonymous or ``#``-suffixed
    fresh) variables so that user variable names survive in the output.
    Returns the folded literals together with the composed substitution,
    so callers can replay the eliminations on terms kept outside the
    literal list (aggregated terms, group-by terms).
    """
    current = list(literals)
    composed = Substitution()
    changed = True
    while changed:
        changed = False
        for literal in current:
            if not isinstance(literal, Comparison) or literal.op != "eq":
                continue
            truth = comparison_truth(literal)
            if truth is True:
                current.remove(literal)
                changed = True
                break
            variable, image = _pick_elimination(literal)
            if variable is None:
                continue
            substitution = Substitution({variable: image})
            composed = composed.compose(substitution)
            current = [
                substitution.apply_literal(other)
                for other in current if other is not literal
            ]
            changed = True
            break
    return current, composed


def _is_fresh(term: Term) -> bool:
    return isinstance(term, Variable) \
        and (is_anonymous(term) or "#" in term.name)


def _pick_elimination(comparison: Comparison) -> tuple[Variable | None, Term]:
    left, right = comparison.left, comparison.right
    if _is_fresh(left):
        return left, right  # type: ignore[return-value]
    if _is_fresh(right):
        return right, left  # type: ignore[return-value]
    if isinstance(left, Variable):
        return left, right
    if isinstance(right, Variable):
        return right, left
    return None, left


def compile_rule(rule: Rule, schema: RelationalSchema,
                 views: "dict[str, CompiledView] | None" = None
                 ) -> CompiledView:
    """Compile a view definition into unfoldable body literals.

    The body must be disjunction-free (one conjunct); it may reference
    previously compiled views (no recursion).  Head parameters must be
    bound by the body.
    """
    disjuncts = normalize_disjuncts(rule.body)
    if len(disjuncts) != 1:
        raise CompilationError(
            f"view {rule.head_name!r} has a disjunctive body; split it "
            "into separate constraints instead")
    if views and rule.head_name in views:
        raise CompilationError(
            f"view {rule.head_name!r} is defined twice")
    compiler = _Compiler(schema, views)
    variables: dict[str, Variable] = {}
    literals = compiler.compile_conjunct(disjuncts[0], variables)
    params = tuple(variables.setdefault(name, Variable(name))
                   for name in rule.head_params)
    folded, folding = fold_equalities(literals)
    folded_params = []
    for param in params:
        image = folding.apply_term(param)
        if not isinstance(image, Variable):
            # a head parameter folded to a constant: keep it via a
            # fresh variable equated to that constant
            alias = fresh_variable(param.name)
            folded = folded + [Comparison("eq", alias, image)]
            image = alias
        folded_params.append(image)
    body_vars: set[Variable] = set()
    for literal in folded:
        body_vars |= literal.variables()
    for param, name in zip(folded_params, rule.head_params):
        if param not in body_vars:
            raise CompilationError(
                f"head parameter {name} of view {rule.head_name!r} is "
                "not bound by the body")
    return CompiledView(rule.head_name, tuple(folded_params),
                        tuple(folded))


def compile_constraint(constraint: Constraint,
                       schema: RelationalSchema,
                       views: "dict[str, CompiledView] | None" = None
                       ) -> list[Denial]:
    """Compile an XPathLog denial into equivalent Datalog denials.

    One denial is produced per disjunct of the body's disjunctive normal
    form (footnote 3).  ``views`` supplies compiled view definitions
    for predicate calls.  Raises
    :class:`repro.errors.CompilationError` when the constraint uses a
    construct the schema cannot express.
    """
    compiler = _Compiler(schema, views)
    denials: list[Denial] = []
    for conjunct in normalize_disjuncts(constraint.body):
        variables: dict[str, Variable] = {}
        literals = compiler.compile_conjunct(conjunct, variables)
        folded, _ = fold_equalities(literals)
        if not folded:
            raise CompilationError(
                f"disjunct of {constraint} compiled to an empty body — "
                "the constraint would forbid every document")
        denial = Denial(tuple(folded)).deduplicated()
        denials.append(prune_implied_parent_atoms(denial, schema))
    return denials
