"""Tokenizer for XPathLog constraints.

Accepts both the paper's typographic operators (``←``, ``∧``, ``∨``,
``→``, ``≠``, ``≤``, ``≥``) and plain-ASCII spellings (``<-``, ``/\\``
or ``and``, ``\\/`` or ``or``, ``->``, ``!=``, ``<=``, ``>=``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XPathLogError


@dataclass(frozen=True)
class Token:
    kind: str
    value: str | int | float
    line: int
    column: int


_SYMBOLS = [
    # order matters: longest first
    ("<-", "IMPLIED"),
    ("←", "IMPLIED"),
    ("//", "DSLASH"),
    ("/\\", "AND"),
    ("\\/", "OR"),
    ("/", "SLASH"),
    ("->", "ARROW"),
    ("→", "ARROW"),
    ("!=", "NE"),
    ("≠", "NE"),
    ("<=", "LE"),
    ("≤", "LE"),
    (">=", "GE"),
    ("≥", "GE"),
    ("∧", "AND"),
    ("∨", "OR"),
    ("¬", "NEG"),
    ("..", "DOTDOT"),
    ("=", "EQ"),
    ("<", "LT"),
    (">", "GT"),
    ("[", "LBRACKET"),
    ("]", "RBRACKET"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("{", "LBRACE"),
    ("}", "RBRACE"),
    (";", "SEMI"),
    (",", "COMMA"),
    ("@", "AT"),
    ("_", "UNDERSCORE"),
]

_KEYWORDS = {"and": "AND", "or": "OR"}


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if char in " \t\r":
            pos += 1
            continue
        column = pos - line_start + 1
        if char in "'\"":
            end = text.find(char, pos + 1)
            if end == -1:
                raise XPathLogError("unterminated string literal", line,
                                    column)
            tokens.append(Token("STRING", text[pos + 1: end], line, column))
            pos = end + 1
            continue
        if char.isdigit():
            start = pos
            while pos < length and (text[pos].isdigit() or text[pos] == "."):
                pos += 1
            raw = text[start:pos]
            value: int | float = float(raw) if "." in raw else int(raw)
            tokens.append(Token("NUMBER", value, line, column))
            continue
        if char.isalpha() or char == "_" and pos + 1 < length \
                and (text[pos + 1].isalnum() or text[pos + 1] == "_"):
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] in "_-"):
                pos += 1
            word = text[start:pos]
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(Token(_KEYWORDS[lowered], word, line, column))
            elif word[0].isupper():
                tokens.append(Token("UPPER_NAME", word, line, column))
            else:
                tokens.append(Token("NAME", word, line, column))
            continue
        matched = False
        for symbol, kind in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(kind, symbol, line, column))
                pos += len(symbol)
                matched = True
                break
        if not matched:
            raise XPathLogError(f"unexpected character {char!r}", line,
                                column)
    tokens.append(Token("EOF", "", line, length - line_start + 1))
    return tokens
