"""Recursive-descent parser for XPathLog constraints.

Grammar (tokens in capitals)::

    constraint  := IMPLIED condition EOF
    condition   := conjunct (OR conjunct)*
    conjunct    := primary (AND primary)*
    primary     := '(' condition ')'
                 | aggregate OP bound
                 | operand (OP operand)?          -- path condition or comparison
    aggregate   := AGGNAME '{' [VAR] '[' VAR (',' VAR)* ']' ';' path '}'
    operand     := STRING | NUMBER | VAR | path
    path        := ('//' | '/')? step (('/' | '//') step)*
    step        := '..' | '@' NAME
                 | NAME ['(' ')'] qualifier* ['->' VAR] qualifier*
    qualifier   := '[' condition ']'

Inside a qualifier, a leading ``/`` denotes a path relative to the
context node (the paper writes ``//rev[/name/text() → R]``).
"""

from __future__ import annotations

from repro.errors import XPathLogError
from repro.xpathlog.ast import (
    AggregateComparison,
    AndCondition,
    ComparisonCondition,
    Condition,
    ConstantOperand,
    Constraint,
    NotCondition,
    Operand,
    PredicateCall,
    Rule,
    OrCondition,
    PathCondition,
    PathExpression,
    PathOperand,
    Step,
    VariableOperand,
)
from repro.xpathlog.lexer import Token, tokenize

_AGGREGATES = {
    "Cnt": ("cnt", False),
    "CntD": ("cnt", True),
    "Cnt_D": ("cnt", True),
    "Sum": ("sum", False),
    "SumD": ("sum", True),
    "Sum_D": ("sum", True),
    "Max": ("max", False),
    "Min": ("min", False),
    "Avg": ("avg", False),
}

_COMPARISON_TOKENS = {
    "EQ": "eq",
    "NE": "ne",
    "LT": "lt",
    "LE": "le",
    "GT": "gt",
    "GE": "ge",
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str, what: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise self.error(f"expected {what or kind}, found {token.value!r}")
        return self.advance()

    def error(self, message: str) -> XPathLogError:
        token = self.peek()
        return XPathLogError(message, token.line, token.column)

    # -- grammar -------------------------------------------------------------

    def parse_constraint(self) -> Condition:
        self.expect("IMPLIED", "'←' at the start of a denial")
        condition = self.parse_condition(in_qualifier=False)
        self.expect("EOF", "end of constraint")
        return condition

    def parse_condition(self, in_qualifier: bool) -> Condition:
        items = [self.parse_conjunct(in_qualifier)]
        while self.accept("OR"):
            items.append(self.parse_conjunct(in_qualifier))
        if len(items) == 1:
            return items[0]
        return OrCondition(tuple(items))

    def parse_conjunct(self, in_qualifier: bool) -> Condition:
        items = [self.parse_primary(in_qualifier)]
        while self.accept("AND"):
            items.append(self.parse_primary(in_qualifier))
        if len(items) == 1:
            return items[0]
        return AndCondition(tuple(items))

    def parse_primary(self, in_qualifier: bool) -> Condition:
        token = self.peek()
        if token.kind == "LPAREN":
            self.advance()
            inner = self.parse_condition(in_qualifier)
            self.expect("RPAREN")
            return inner
        if token.kind == "UPPER_NAME" and str(token.value) in _AGGREGATES \
                and self.peek(1).kind == "LBRACE":
            return self.parse_aggregate(in_qualifier)
        if token.kind == "NAME" and token.value == "not" \
                and self.peek(1).kind == "LPAREN":
            self.advance()
            self.advance()
            inner = self.parse_condition(in_qualifier)
            self.expect("RPAREN")
            return NotCondition(inner)
        if token.kind == "NAME" and self.peek(1).kind == "LPAREN" \
                and self.peek(2).kind in ("UPPER_NAME", "STRING",
                                          "NUMBER", "RPAREN") \
                and self.peek(3).kind in ("COMMA", "RPAREN"):
            return self.parse_predicate_call()
        if token.kind == "NEG":
            self.advance()
            self.expect("LPAREN", "'(' after ¬")
            inner = self.parse_condition(in_qualifier)
            self.expect("RPAREN")
            return NotCondition(inner)
        left = self.parse_operand(in_qualifier)
        op_token = self.peek()
        if op_token.kind in _COMPARISON_TOKENS:
            self.advance()
            right = self.parse_operand(in_qualifier)
            return ComparisonCondition(
                _COMPARISON_TOKENS[op_token.kind], left, right)
        if isinstance(left, PathOperand):
            return PathCondition(left.path)
        raise self.error(
            "a bare operand must be a path expression; variables and "
            "constants need a comparison")

    def parse_predicate_call(self) -> Condition:
        name = str(self.expect("NAME").value)
        self.expect("LPAREN")
        args: list[Operand] = []
        if self.peek().kind != "RPAREN":
            args.append(self.parse_call_argument())
            while self.accept("COMMA"):
                args.append(self.parse_call_argument())
        self.expect("RPAREN")
        return PredicateCall(name, tuple(args))

    def parse_call_argument(self) -> Operand:
        token = self.peek()
        if token.kind == "UPPER_NAME":
            self.advance()
            return VariableOperand(str(token.value))
        if token.kind == "STRING":
            self.advance()
            return ConstantOperand(str(token.value))
        if token.kind == "NUMBER":
            self.advance()
            return ConstantOperand(token.value)
        raise self.error(
            "view-call arguments must be variables or literals")

    def parse_rule_text(self) -> Rule:
        name = str(self.expect("NAME", "view name").value)
        self.expect("LPAREN")
        params: list[str] = []
        if self.peek().kind != "RPAREN":
            params.append(str(self.expect("UPPER_NAME").value))
            while self.accept("COMMA"):
                params.append(str(self.expect("UPPER_NAME").value))
        self.expect("RPAREN")
        self.expect("IMPLIED", "'←' between head and body")
        body = self.parse_condition(in_qualifier=False)
        self.expect("EOF", "end of rule")
        if len(set(params)) != len(params):
            raise self.error("head parameters must be distinct variables")
        return Rule(name, tuple(params), body)

    def parse_aggregate(self, in_qualifier: bool) -> Condition:
        name_token = self.expect("UPPER_NAME")
        func, distinct = _AGGREGATES[str(name_token.value)]
        self.expect("LBRACE")
        term: str | None = None
        if self.peek().kind == "UPPER_NAME":
            term = str(self.advance().value)
        self.expect("LBRACKET", "'[' before the group-by variables")
        group: list[str] = []
        if self.peek().kind != "RBRACKET":
            group.append(str(self.expect("UPPER_NAME").value))
            while self.accept("COMMA"):
                group.append(str(self.expect("UPPER_NAME").value))
        self.expect("RBRACKET")
        self.expect("SEMI", "';' before the aggregate path")
        path = self.parse_path(in_qualifier)
        self.expect("RBRACE")
        op_token = self.peek()
        if op_token.kind not in _COMPARISON_TOKENS:
            raise self.error("an aggregate must be compared with a bound")
        self.advance()
        bound_token = self.peek()
        if bound_token.kind == "NUMBER":
            self.advance()
            bound: int | float | str = bound_token.value
        elif bound_token.kind == "STRING":
            self.advance()
            bound = bound_token.value
        else:
            raise self.error("aggregate bound must be a number or string")
        if func == "cnt" and term is not None and term in group:
            raise self.error(
                "the aggregated variable cannot be a group-by variable")
        return AggregateComparison(func, distinct, term, tuple(group), path,
                                   _COMPARISON_TOKENS[op_token.kind],
                                   bound)  # type: ignore[arg-type]

    def parse_operand(self, in_qualifier: bool) -> Operand:
        token = self.peek()
        if token.kind == "STRING":
            self.advance()
            return ConstantOperand(str(token.value))
        if token.kind == "NUMBER":
            self.advance()
            return ConstantOperand(token.value)
        if token.kind == "UPPER_NAME" and self.peek(1).kind not in (
                "SLASH", "DSLASH"):
            self.advance()
            return VariableOperand(str(token.value))
        return PathOperand(self.parse_path(in_qualifier))

    def parse_path(self, in_qualifier: bool) -> PathExpression:
        token = self.peek()
        absolute = False
        first_descendant = False
        if token.kind == "DSLASH":
            self.advance()
            absolute = not in_qualifier
            first_descendant = True
        elif token.kind == "SLASH":
            self.advance()
            # inside a qualifier a leading '/' is relative to the
            # context node (paper notation //rev[/name/text() → R])
            absolute = not in_qualifier
        steps = [self.parse_step()]
        flags = [first_descendant]
        while self.peek().kind in ("SLASH", "DSLASH"):
            flags.append(self.advance().kind == "DSLASH")
            steps.append(self.parse_step())
        return PathExpression(tuple(steps), absolute, tuple(flags))

    def parse_step(self) -> Step:
        token = self.peek()
        if token.kind == "DOTDOT":
            self.advance()
            return Step("parent")
        if token.kind == "AT":
            self.advance()
            name = self.expect("NAME", "attribute name")
            return self.finish_step("attribute", str(name.value))
        if token.kind in ("NAME", "UPPER_NAME"):
            self.advance()
            name = str(token.value)
            if self.peek().kind == "LPAREN":
                if name not in ("text", "position"):
                    raise self.error(
                        f"unknown node function {name}(); only text() and "
                        "position() are supported")
                self.advance()
                self.expect("RPAREN")
                return self.finish_step(name, None)
            return self.finish_step("child", name)
        raise self.error(f"expected a path step, found {token.value!r}")

    def finish_step(self, axis: str, nodetest: str | None) -> Step:
        qualifiers: list[Condition] = []
        binding: str | None = None
        while True:
            token = self.peek()
            if token.kind == "LBRACKET":
                self.advance()
                if self.peek().kind == "NUMBER" \
                        and self.peek(1).kind == "RBRACKET":
                    # positional qualifier [n] — shorthand for
                    # [position() = n]
                    number = self.advance()
                    position_path = PathExpression(
                        (Step("position"),), False, (False,))
                    qualifiers.append(ComparisonCondition(
                        "eq", PathOperand(position_path),
                        ConstantOperand(number.value)))
                else:
                    qualifiers.append(self.parse_condition(in_qualifier=True))
                self.expect("RBRACKET")
            elif token.kind == "ARROW" and binding is None:
                self.advance()
                binding = str(self.expect(
                    "UPPER_NAME", "a variable after '→'").value)
            else:
                return Step(axis, nodetest, tuple(qualifiers), binding)


def parse_constraint(text: str) -> Constraint:
    """Parse the text of an XPathLog denial (``← body``)."""
    parser = _Parser(tokenize(text))
    body = parser.parse_constraint()
    return Constraint(body, source=text)


def parse_rule(text: str) -> Rule:
    """Parse a view definition ``name(V1, ..., Vn) <- body``."""
    parser = _Parser(tokenize(text))
    rule = parser.parse_rule_text()
    return Rule(rule.head_name, rule.head_params, rule.body, source=text)


def parse_path(text: str) -> PathExpression:
    """Parse a standalone path expression (used in tests and tools)."""
    parser = _Parser(tokenize(text))
    path = parser.parse_path(in_qualifier=False)
    parser.expect("EOF", "end of path")
    return path
