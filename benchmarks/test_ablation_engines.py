"""Ablation A1 — XQuery engine vs. direct Datalog evaluation.

The paper's gain could in principle be an artifact of its XQuery
engine.  This ablation evaluates the *same* checks (full and
simplified) on the shredded fact database with the Datalog evaluator:
the optimized-vs-full gap must show up on both engines, demonstrating
the improvement is algorithmic (fewer, more instantiated joins), not
engine-specific.
"""

import pytest

from repro.core import DatalogChecker
from repro.datalog.evaluate import denial_holds


@pytest.fixture()
def datalog(schema, corpus):
    pub_doc, rev_doc, _ = corpus
    return DatalogChecker(schema, [pub_doc, rev_doc])


def test_full_datalog(benchmark, datalog, conflict_scenario, size_kib):
    benchmark.group = f"ablation-engines-{size_kib}KiB"
    denials = conflict_scenario.constraint.denials

    def check():
        return all(denial_holds(denial, datalog.database)
                   for denial in denials)

    assert benchmark(check) is True


def test_optimized_datalog(benchmark, datalog, conflict_scenario,
                           size_kib):
    benchmark.group = f"ablation-engines-{size_kib}KiB"
    checks = conflict_scenario.pattern_checks
    bindings = checks.analyzed.bind(conflict_scenario.rev_doc,
                                    conflict_scenario.legal_operation)
    simplified = [
        denial
        for check in checks.optimized
        if check.constraint.name == "conflict_of_interest"
        for denial in check.simplified
    ]
    violated = benchmark(datalog.check_denials, simplified, bindings)
    assert violated is False


def test_full_xquery(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"ablation-engines-{size_kib}KiB"
    assert benchmark(conflict_scenario.full_check) is False


def test_optimized_xquery(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"ablation-engines-{size_kib}KiB"
    assert benchmark(conflict_scenario.optimized_check) is False
