"""Figure 1(a) — "Conflict of interests" (example 1).

Three curves over document size (the benchmark-name suffix is the
corpus target size):

* ``full``      — verify the original constraint (diamonds);
* ``optimized`` — verify the simplified constraint for a pending legal
  submission (squares);
* ``update_full_rollback`` — execute the update, verify the original
  constraint, undo the update (triangles; the cost an un-optimized
  system pays on an illegal update).

Expected shape (section 7): optimized ≪ full for every size with the
gap growing, since the simplified denial is instantiated with the
update's values and drops one join; the triangles curve dominates both.
"""


def test_full(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"fig1a-{size_kib}KiB"
    violated = benchmark(conflict_scenario.full_check)
    assert violated is False  # the generated corpus is consistent


def test_optimized(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"fig1a-{size_kib}KiB"
    violated = benchmark(conflict_scenario.optimized_check)
    assert violated is False  # the pending update is legal


def test_update_full_rollback(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"fig1a-{size_kib}KiB"
    violated = benchmark(conflict_scenario.update_check_rollback)
    assert violated is False


def test_optimized_detects_illegal(benchmark, conflict_scenario, size_kib):
    """The squares curve measured on an illegal update: the early
    rejection is as cheap as the legal case."""
    benchmark.group = f"fig1a-{size_kib}KiB"
    violated = benchmark(
        conflict_scenario.optimized_check,
        conflict_scenario.illegal_operation)
    assert violated is True
