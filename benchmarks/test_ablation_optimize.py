"""Ablation A2 — what each Optimize stage buys.

``Simp = Optimize ∘ After``; this ablation evaluates, on the same
corpus and pending update, the checks produced by successively weaker
pipelines:

* ``after_only``  — the raw ``After^U(Γ)`` expansion (all combinations,
  including the unchanged constraint copies);
* ``normalized``  — per-denial normalization (equality folding,
  contradiction removal) but no redundancy elimination against Γ∪Δ;
* ``full_simp``   — the complete procedure.

All three are *correct* pre-checks; the benchmark shows the performance
ladder the paper's Optimize rules climb.
"""

import pytest

from repro.core import DatalogChecker
from repro.simplify import after, optimize, simp
from repro.simplify.optimize import normalize_denial


@pytest.fixture()
def stages(schema, conflict_scenario):
    analyzed = conflict_scenario.pattern_checks.analyzed
    gamma = conflict_scenario.constraint.denials
    expanded = after(gamma, analyzed.pattern)
    normalized = [
        normal for normal in (normalize_denial(denial)
                              for denial in expanded)
        if normal is not None
    ]
    simplified = simp(gamma, analyzed.pattern, analyzed.hypotheses)
    return expanded, normalized, simplified


@pytest.fixture()
def bindings(conflict_scenario):
    checks = conflict_scenario.pattern_checks
    return checks.analyzed.bind(conflict_scenario.rev_doc,
                                conflict_scenario.legal_operation)


@pytest.fixture()
def datalog(schema, corpus):
    pub_doc, rev_doc, _ = corpus
    return DatalogChecker(schema, [pub_doc, rev_doc])


def _fresh_binding_values(bindings, datalog):
    """Add fabricated fresh ids so After-level checks are evaluable."""
    values = dict(bindings)
    values["is"] = -1
    values["ia"] = -2
    return values


def test_after_only(benchmark, stages, bindings, datalog, size_kib):
    benchmark.group = f"ablation-optimize-{size_kib}KiB"
    expanded, _, _ = stages
    values = _fresh_binding_values(bindings, datalog)
    violated = benchmark(datalog.check_denials, expanded, values)
    assert violated is False


def test_normalized(benchmark, stages, bindings, datalog, size_kib):
    benchmark.group = f"ablation-optimize-{size_kib}KiB"
    _, normalized, _ = stages
    values = _fresh_binding_values(bindings, datalog)
    violated = benchmark(datalog.check_denials, normalized, values)
    assert violated is False


def test_full_simp(benchmark, stages, bindings, datalog, size_kib):
    benchmark.group = f"ablation-optimize-{size_kib}KiB"
    _, _, simplified = stages
    violated = benchmark(datalog.check_denials, simplified, bindings)
    assert violated is False


def test_stage_sizes(stages):
    """The static footprint shrinks at every stage."""
    expanded, normalized, simplified = stages
    assert len(expanded) >= len(normalized) >= len(simplified)
    assert sum(len(d.body) for d in normalized) \
        >= sum(len(d.body) for d in simplified)
