"""Planner ablation — planned vs. unplanned evaluation, batched checks.

Two question sets, emitted as ``BENCH_planner.json`` by
``make bench-planner``:

* **planned vs. unplanned full checks** on the figure 1 workloads: the
  same prepared constraint ASTs evaluated through the cost-based
  planner (selectivity-ordered bindings, early-exit quantifiers,
  value-index probes) and through the unplanned tuple-at-a-time
  engine.  The documents are identical and read-only, so the timing
  gap is purely the planner's doing.
* **batched vs. sequential update checking**: 32 same-pattern legal
  submissions checked by one :meth:`IntegrityGuard.check_batch` call
  (shared, incrementally repaired value indexes) against 32 sequential
  :meth:`try_execute` calls.  Each round runs on a freshly generated
  corpus (built in un-timed setup), so state never accumulates across
  rounds or arms.

``scripts/check_planner_gate.py`` turns the JSON into a regression
gate: the planned/unplanned and batch/sequential ratios must not
regress more than 20% against the committed baseline.
"""

from __future__ import annotations

from repro.core import IntegrityGuard
from repro.datagen import generate_corpus, spec_for_size
from repro.datagen.running_example import submission_xupdate
from repro.xquery.engine import query_truth
from repro.xquery.planner import clear_caches, query_truth_planned

BATCH_SIZE = 32


def _full_planned(scenario) -> bool:
    return any(
        query_truth_planned(query.prepared, scenario.documents)
        for query in scenario.constraint.full_queries)


def _full_unplanned(scenario) -> bool:
    return any(
        query_truth(query.prepared, scenario.documents)
        for query in scenario.constraint.full_queries)


# -- fig1a: conflict of interests ----------------------------------------


def test_fig1a_full_planned(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"planner-fig1a-{size_kib}KiB"
    clear_caches()
    violated = benchmark(_full_planned, conflict_scenario)
    assert violated is False


def test_fig1a_full_unplanned(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"planner-fig1a-{size_kib}KiB"
    violated = benchmark(_full_unplanned, conflict_scenario)
    assert violated is False


# -- fig1b: conference workload ------------------------------------------


def test_fig1b_full_planned(benchmark, workload_scenario, size_kib):
    benchmark.group = f"planner-fig1b-{size_kib}KiB"
    clear_caches()
    violated = benchmark(_full_planned, workload_scenario)
    assert violated is False


def test_fig1b_full_unplanned(benchmark, workload_scenario, size_kib):
    benchmark.group = f"planner-fig1b-{size_kib}KiB"
    violated = benchmark(_full_unplanned, workload_scenario)
    assert violated is False


# -- batched update checking ---------------------------------------------


def _batch_updates() -> list[str]:
    """32 same-pattern submissions, one per (track, rev) target."""
    return [
        submission_xupdate(1 + index % 4, 1 + (index // 4) % 8,
                           f"Batch paper {index}",
                           f"Batch Author {index}")
        for index in range(BATCH_SIZE)]


def _fresh_guard(schema, size_kib):
    documents = list(generate_corpus(spec_for_size(size_kib * 1024)))
    return IntegrityGuard(schema, documents)


def test_batch32_check_batch(benchmark, schema, size_kib):
    benchmark.group = f"planner-batch{BATCH_SIZE}-{size_kib}KiB"
    updates = _batch_updates()

    def setup():
        return (_fresh_guard(schema, size_kib),), {}

    def run(guard):
        decisions = guard.check_batch(updates)
        # a few targets hit busy reviewers and are (correctly)
        # rejected; both arms see the same corpus, so decisions match
        assert len(decisions) == BATCH_SIZE
        return decisions

    benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=0)


def test_batch32_sequential(benchmark, schema, size_kib):
    benchmark.group = f"planner-batch{BATCH_SIZE}-{size_kib}KiB"
    updates = _batch_updates()

    def setup():
        return (_fresh_guard(schema, size_kib),), {}

    def run(guard):
        decisions = [guard.try_execute(update) for update in updates]
        assert len(decisions) == BATCH_SIZE
        return decisions

    benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=0)
