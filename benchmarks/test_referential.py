"""Ablation A4 — foreign keys via negation (library extension).

The referential constraint "every submission title matches some
publication" is the constraint class the paper's related work singles
out.  Compiled through the same pipeline, its optimized check collapses
to a single membership probe (``not(some $Ip in //pub satisfies
$Ip/title/text() = %{t})``) while the full check joins every submission
against every publication.
"""

import pytest

from repro.core import ConstraintSchema, IntegrityGuard
from repro.datagen.running_example import (
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from repro.xquery.engine import query_truth
from repro.xtree import parse_document, serialize

REFERENTIAL = (
    "<- //sub/title/text() -> T /\\ not(//pub[/title/text() -> T])")


@pytest.fixture()
def referential_setup(corpus):
    pub_doc, rev_doc, _ = corpus
    schema = ConstraintSchema([PUB_DTD, REV_DTD], [REFERENTIAL],
                              names=["ref"])
    schema.register_pattern(submission_xupdate(1, 1, "x", "y"))
    # make the corpus consistent with the FK: give every submission
    # title a matching publication (on copies, to keep the shared
    # corpus pristine for the other benchmarks)
    pub_copy = parse_document(serialize(pub_doc))
    rev_copy = parse_document(serialize(rev_doc))
    from repro.xtree.node import Element, Text
    dblp = pub_copy.root
    for sub in rev_copy.iter_elements("sub"):
        title = sub.first_child("title")
        pub = Element("pub")
        title_el = Element("title")
        title_el.append(Text(title.text() if title else ""))
        pub.append(title_el)
        aut = Element("aut")
        name = Element("name")
        name.append(Text("Catalog Bot"))
        aut.append(name)
        pub.append(aut)
        dblp.append(pub)
    return schema, [pub_copy, rev_copy]


def test_full_check(benchmark, referential_setup, size_kib):
    benchmark.group = f"referential-{size_kib}KiB"
    schema, documents = referential_setup
    query = schema.constraint("ref").full_queries[0]
    violated = benchmark(query_truth, query.text, documents)
    assert violated is False


def test_optimized_check_existing_title(benchmark, referential_setup,
                                        size_kib):
    benchmark.group = f"referential-{size_kib}KiB"
    schema, documents = referential_setup
    guard = IntegrityGuard(schema, documents)
    rev_doc = documents[1]
    existing_title = next(rev_doc.iter_elements("sub")) \
        .first_child("title").text()
    update = submission_xupdate(1, 1, existing_title, "Someone")

    def attempt():
        decision = guard.try_execute(update)
        assert decision.legal
        # undo so every round starts from the same state
        inserted = [sub for sub in rev_doc.iter_elements("sub")
                    if sub.first_child("title").text() == existing_title]
        inserted[-1].parent.remove(inserted[-1])
        return decision

    decision = benchmark(attempt)
    assert decision.optimized


def test_optimized_check_phantom_title(benchmark, referential_setup,
                                       size_kib):
    benchmark.group = f"referential-{size_kib}KiB"
    schema, documents = referential_setup
    guard = IntegrityGuard(schema, documents)
    update = submission_xupdate(1, 1, "No Such Publication Anywhere",
                                "Someone")
    decision = benchmark(guard.try_execute, update)
    assert not decision.legal and not decision.applied
