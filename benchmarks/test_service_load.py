"""Service load harness — read/write throughput and tail latency.

Not a pytest-benchmark module: the metrics here are *concurrent*
(throughput under N reader threads, p50/p99 tail latency while a
writer interferes), which a single-function timer cannot express.
Run it directly::

    PYTHONPATH=src python benchmarks/test_service_load.py --out BENCH_service.json

Design notes for a GIL-bound, single-core runner:

* Clients are **closed-loop with calibrated think time**: each reader
  issues one full consistency check, then sleeps ``Z = 6 x R`` where
  ``R`` is the unloaded median check cost measured at startup.  With
  think time, adding readers raises offered load without demanding
  CPU parallelism the interpreter cannot give — so read throughput
  scales with reader count *unless readers serialize on a lock*,
  which is exactly the regression the gate watches for.
* The ``mix20`` scenario paces one writer to ~20% of operations
  (think ``(Z + R) / (0.25 x N)``), the paper's update-heavy service
  mix, and runs at 1/4/16 readers in snapshot mode.
* The ``write-heavy`` scenario commits **batches** of 96 updates per
  lock round (``check_batch``) at a ~50% writer duty cycle (the
  writer sleeps for one batch duration between batches) against 4
  readers.  Batches are balanced append/remove pairs, so the corpus
  stays the same size however long the cell runs — late samples
  measure the same store as early ones.  The cell runs twice: once
  with snapshot reads and once in locked mode
  (``snapshot_reads=False``): under the store lock a reader that
  arrives mid-batch waits out the whole un-preemptible critical
  section, so read p99 tracks the batch length; on the snapshot path
  readers never touch the lock and pay only interpreter time-slice
  interference, so p99 stays near the unloaded read cost.
* Reader think times are jittered (x0.5-1.5) so clients don't wake in
  lockstep, and the interpreter switch interval is lowered to 1 ms
  for the measurement (recorded in ``meta``) — both keep tail
  latencies a measure of *blocking*, not of scheduler beat patterns.

``scripts/check_service_gate.py`` enforces the two headline numbers:
read throughput at 16 readers >= 3x the 1-reader throughput
(``mix20``), and snapshot-read p99 <= 0.5x locked-read p99
(``write-heavy``).

The workload reuses the fault-injection harness's step vocabulary:
reads are full constraint checks (``verify_consistency``), writes are
the running example's legal submission insertions
(:func:`repro.datagen.legal_submission`), pre-generated so the write
path measures check-and-commit, not text generation.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import threading
import time

from repro.datagen import generate_corpus, spec_for_size
from repro.datagen.running_example import make_schema, submission_xupdate
from repro.datagen.workload import _normal_reviewer_targets, legal_submission
from repro.service import CheckingService

#: pre-generated updates per cell; targets are picked from the initial
#: corpus, and appends keep every (track, rev) index valid throughout
_UPDATE_POOL = 512


def _percentile(values: "list[float]", fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _latency_stats(latencies: "list[float]",
                   duration: float) -> dict:
    return {
        "ops": len(latencies),
        "throughput": len(latencies) / duration if duration else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
    }


def _removal_xupdate(track: int, rev: int, position: int) -> str:
    return f"""<?xml version="1.0"?>
<xupdate:modifications version="1.0"
    xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:remove select="/review/track[{track}]/rev[{rev}]/sub[{position}]"/>
</xupdate:modifications>"""


def _balanced_pool(rev_doc, rng: "random.Random") -> "list[str]":
    """Append/remove pairs that leave the store exactly as found.

    Each pair appends a fresh-author submission to a reviewer and
    then removes that same (last) submission, so arbitrarily long
    write runs keep the corpus stationary — latency samples from the
    start and end of a cell measure the same store.
    """
    targets = _normal_reviewer_targets(rev_doc)
    counts = {}
    for index, track in enumerate(
            rev_doc.root.element_children("track"), start=1):
        for rev_index, rev in enumerate(
                track.element_children("rev"), start=1):
            counts[(index, rev_index)] = \
                len(rev.element_children("sub"))
    pool: "list[str]" = []
    while len(pool) < _UPDATE_POOL:
        track, rev, _ = targets[(len(pool) // 2) % len(targets)]
        pool.append(submission_xupdate(
            track, rev, f"Load Sub {rng.randrange(10 ** 9)}",
            f"Fresh Author {rng.randrange(10 ** 9)}"))
        pool.append(_removal_xupdate(track, rev,
                                     counts[(track, rev)] + 1))
    return pool


def _fresh_service(schema, size_kib: int, snapshot_reads: bool):
    documents = list(generate_corpus(spec_for_size(size_kib * 1024)))
    service = CheckingService(schema, documents,
                              snapshot_reads=snapshot_reads)
    return service, documents


def calibrate_read_cost(schema, size_kib: int, rounds: int = 9) -> float:
    """Median unloaded cost of one full check, in seconds."""
    service, _ = _fresh_service(schema, size_kib, True)
    samples = []
    for _ in range(rounds):
        begin = time.perf_counter()
        violated = service.verify_consistency()
        samples.append(time.perf_counter() - begin)
        assert violated == []
    return statistics.median(samples)


def run_cell(schema, *, size_kib: int, scenario: str,
             snapshot_reads: bool, readers: int, read_think: float,
             write_think: float, duration: float,
             write_batch: int = 1, duty_pacing: bool = False,
             balanced: bool = False) -> dict:
    """One load cell: N closed-loop readers + 1 paced writer.

    With ``duty_pacing`` the writer sleeps for the duration of the
    batch it just committed (a ~50% duty cycle) instead of a fixed
    ``write_think``, keeping the cell off CPU saturation so latency
    measures blocking rather than run-queue depth.  With ``balanced``
    the update pool is append/remove pairs that keep the corpus
    stationary (see :func:`_balanced_pool`).
    """
    service, documents = _fresh_service(schema, size_kib,
                                        snapshot_reads)
    rng = random.Random(4242)
    if balanced:
        updates = _balanced_pool(documents[1], rng)
    else:
        updates = [legal_submission(documents[1], rng)
                   for _ in range(_UPDATE_POOL)]
    start = threading.Barrier(readers + 2)
    read_latencies: "list[list[float]]" = [[] for _ in range(readers)]
    write_latencies: "list[float]" = []
    applied = 0
    errors: "list[BaseException]" = []

    def reader(slot: int) -> None:
        try:
            start.wait()
            deadline = time.perf_counter() + duration
            sink = read_latencies[slot]
            jitter = random.Random(1000 + slot)
            while time.perf_counter() < deadline:
                begin = time.perf_counter()
                service.verify_consistency()
                sink.append(time.perf_counter() - begin)
                if read_think:
                    time.sleep(read_think * (0.5 + jitter.random()))
        except BaseException as error:  # noqa: B036 - reported below
            errors.append(error)

    def writer() -> None:
        nonlocal applied
        try:
            start.wait()
            deadline = time.perf_counter() + duration
            index = 0
            while time.perf_counter() < deadline:
                begin = time.perf_counter()
                if write_batch == 1:
                    decisions = [service.try_execute(
                        updates[index % _UPDATE_POOL])]
                else:
                    decisions = service.check_batch(
                        [updates[(index + offset) % _UPDATE_POOL]
                         for offset in range(write_batch)])
                elapsed = time.perf_counter() - begin
                write_latencies.append(elapsed)
                applied += sum(1 for decision in decisions
                               if decision.applied)
                index += write_batch
                if duty_pacing:
                    time.sleep(elapsed)
                elif write_think:
                    time.sleep(write_think)
        except BaseException as error:  # noqa: B036 - reported below
            errors.append(error)

    threads = [threading.Thread(target=reader, args=(slot,))
               for slot in range(readers)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    start.wait()  # all clients released together
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]

    reads = [latency for sink in read_latencies for latency in sink]
    write_ops = len(write_latencies) * write_batch
    total = len(reads) + write_ops
    cell = {
        "scenario": scenario,
        "mode": "snapshot" if snapshot_reads else "locked",
        "readers": readers,
        "writers": 1,
        "write_batch": write_batch,
        "read": _latency_stats(reads, duration),
        # write latencies are per lock round (one batch = one round)
        "write": _latency_stats(write_latencies, duration),
        "write_fraction": write_ops / total if total else 0.0,
        "applied": applied,
    }
    if snapshot_reads:
        cell["snapshots"] = service.snapshots.stats()
    return cell


def run_suite(*, size_kib: int, duration: float,
              smoke: bool) -> dict:
    schema = make_schema()
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.001)
    try:
        read_cost = calibrate_read_cost(schema, size_kib)
        think = 6.0 * read_cost
        cells = []
        for readers in (1, 4, 16):
            # pace the writer to ~20% of operations: readers offer
            # N / (Z + R) checks per second, so a quarter of that
            # rate on the write side yields the 80/20 mix
            write_think = (think + read_cost) / (0.25 * readers)
            print(f"mix20 snapshot readers={readers} ...", flush=True)
            cells.append(run_cell(
                schema, size_kib=size_kib, scenario="mix20",
                snapshot_reads=True, readers=readers,
                read_think=think, write_think=write_think,
                duration=duration))
        for snapshot_reads in (True, False):
            mode = "snapshot" if snapshot_reads else "locked"
            print(f"write-heavy {mode} readers=4 ...", flush=True)
            cells.append(run_cell(
                schema, size_kib=size_kib, scenario="write-heavy",
                snapshot_reads=snapshot_reads, readers=4,
                read_think=14.0 * read_cost, write_think=0.0,
                duration=duration, write_batch=96,
                duty_pacing=True, balanced=True))
    finally:
        sys.setswitchinterval(previous_interval)
    return {
        "meta": {
            "size_kib": size_kib,
            "calibrated_read_ms": read_cost * 1000.0,
            "think_ms": think * 1000.0,
            "switch_interval_ms": 1.0,
            "duration_s": duration,
            "smoke": smoke,
        },
        "cells": cells,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path")
    parser.add_argument("--size-kib", type=int, default=32,
                        help="corpus size per document set (KiB)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds per cell (default: 4.0, or "
                             "1.2 with --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="short cells for CI")
    args = parser.parse_args(argv)
    duration = args.duration or (1.2 if args.smoke else 4.0)
    report = run_suite(size_kib=args.size_kib, duration=duration,
                       smoke=args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for cell in report["cells"]:
        read = cell["read"]
        write = cell["write"]
        print(f"{cell['scenario']:>11} {cell['mode']:>8} "
              f"readers={cell['readers']:>2}: "
              f"read {read['throughput']:7.1f}/s "
              f"p50 {read['p50_ms']:6.1f}ms p99 {read['p99_ms']:6.1f}ms"
              f" | write {write['throughput']:5.1f}/s "
              f"({cell['write_fraction']:.0%} of ops)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
