"""Columnar backend ablation — vectorized vs. DOM-walking plan steps.

Two question sets, emitted as ``BENCH_columnar.json`` by
``make bench-columnar``:

* **columnar vs. planned-DOM full checks** on the fig1a conflict
  constraint: the same cost-based plan evaluated with its quantifier
  steps lowered to column operations (hash-join probes against
  :class:`~repro.relational.columns.PathIndex` buckets, per-level
  frontier filtering) and with the columnar backend ablated
  (``without_columns``), walking the DOM tuple-at-a-time.  The plan,
  the statistics, and the documents are identical; the gap is purely
  the columnar lowering.
* **batched update checking**: 32 same-pattern submissions through
  :meth:`IntegrityGuard.check_batch` with live column stores
  (incremental delta maintenance, warmed indexes, columnar select
  resolution) against the same batch with the backend ablated.  Each
  round runs on a freshly generated corpus and a fresh guard, built in
  un-timed setup.

``scripts/check_columnar_gate.py`` turns the JSON into a regression
gate: both ratios must stay >= 2x at the largest benchmarked size.
"""

from __future__ import annotations

from repro.core import IntegrityGuard
from repro.datagen import generate_corpus, spec_for_size
from repro.datagen.running_example import submission_xupdate
from repro.xquery.planner import (
    clear_caches,
    query_truth_planned,
    without_columns,
)

BATCH_SIZE = 32


def _full_planned(scenario) -> bool:
    return any(
        query_truth_planned(query.prepared, scenario.documents)
        for query in scenario.constraint.full_queries)


# -- fig1a full check: columnar vs. planned-DOM --------------------------


def test_fig1a_columnar(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"columnar-fig1a-{size_kib}KiB"
    clear_caches()
    violated = benchmark(_full_planned, conflict_scenario)
    assert violated is False


def test_fig1a_planned_dom(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"columnar-fig1a-{size_kib}KiB"
    clear_caches()

    def run(scenario):
        with without_columns():
            return _full_planned(scenario)

    violated = benchmark(run, conflict_scenario)
    assert violated is False


# -- batch32: columnar stores vs. ablated backend ------------------------


def _batch_updates() -> list[str]:
    """32 same-pattern submissions, one per (track, rev) target."""
    return [
        submission_xupdate(1 + index % 4, 1 + (index // 4) % 8,
                           f"Batch paper {index}",
                           f"Batch Author {index}")
        for index in range(BATCH_SIZE)]


def _fresh_guard(schema, size_kib):
    """A new guard over a new corpus; attaches and warms the column
    stores in un-timed setup, exactly like production construction."""
    documents = list(generate_corpus(spec_for_size(size_kib * 1024)))
    return IntegrityGuard(schema, documents)


def test_batch32_columnar(benchmark, schema, size_kib):
    benchmark.group = f"columnar-batch{BATCH_SIZE}-{size_kib}KiB"
    updates = _batch_updates()

    def setup():
        return (_fresh_guard(schema, size_kib),), {}

    def run(guard):
        decisions = guard.check_batch(updates)
        assert len(decisions) == BATCH_SIZE
        return decisions

    benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=0)


def test_batch32_planned_dom(benchmark, schema, size_kib):
    benchmark.group = f"columnar-batch{BATCH_SIZE}-{size_kib}KiB"
    updates = _batch_updates()

    def setup():
        return (_fresh_guard(schema, size_kib),), {}

    def run(guard):
        with without_columns():
            decisions = guard.check_batch(updates)
        assert len(decisions) == BATCH_SIZE
        return decisions

    benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=0)
