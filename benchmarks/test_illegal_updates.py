"""Ablation A3 — the cost of an illegal update, end to end.

The paper's headline for illegal updates: the optimized strategy
rejects them *before* execution (squares), while the un-optimized one
pays update + full check + rollback (triangles).  This benchmark runs
the two complete code paths through the public checkers.
"""


def test_guard_rejects_conflict(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"illegal-{size_kib}KiB"
    decision = benchmark(conflict_scenario.guard.try_execute,
                         conflict_scenario.illegal_update)
    assert not decision.legal and not decision.applied


def test_brute_force_rolls_back_conflict(benchmark, conflict_scenario,
                                         size_kib):
    benchmark.group = f"illegal-{size_kib}KiB"
    decision = benchmark(conflict_scenario.brute.try_execute,
                         conflict_scenario.illegal_update)
    assert not decision.legal and decision.rolled_back


def test_guard_rejects_workload(benchmark, workload_scenario, size_kib):
    benchmark.group = f"illegal-{size_kib}KiB"
    decision = benchmark(workload_scenario.guard.try_execute,
                         workload_scenario.illegal_update)
    assert not decision.legal and not decision.applied


def test_brute_force_rolls_back_workload(benchmark, workload_scenario,
                                         size_kib):
    benchmark.group = f"illegal-{size_kib}KiB"
    decision = benchmark(workload_scenario.brute.try_execute,
                         workload_scenario.illegal_update)
    assert not decision.legal and decision.rolled_back
