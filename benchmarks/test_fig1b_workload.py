"""Figure 1(b) — "Conference workload" (example 2, Cnt_D aggregates).

Same three curves as figure 1(a), for the aggregate constraint.  The
paper observes that the improvement is smaller here: the simplified
check still has to compute aggregate values, only over a pinned
reviewer instead of every group.
"""


def test_full(benchmark, workload_scenario, size_kib):
    benchmark.group = f"fig1b-{size_kib}KiB"
    violated = benchmark(workload_scenario.full_check)
    assert violated is False


def test_optimized(benchmark, workload_scenario, size_kib):
    benchmark.group = f"fig1b-{size_kib}KiB"
    violated = benchmark(workload_scenario.optimized_check)
    assert violated is False


def test_update_full_rollback(benchmark, workload_scenario, size_kib):
    benchmark.group = f"fig1b-{size_kib}KiB"
    violated = benchmark(workload_scenario.update_check_rollback)
    assert violated is False


def test_optimized_detects_illegal(benchmark, workload_scenario,
                                   size_kib):
    benchmark.group = f"fig1b-{size_kib}KiB"
    violated = benchmark(
        workload_scenario.optimized_check,
        workload_scenario.illegal_operation)
    assert violated is True
