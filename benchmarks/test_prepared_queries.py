"""Prepared-plan ablation: compile-once checks vs text re-parsing.

Two curves per constraint:

* ``prepared`` — the production path: the check's AST was compiled at
  schema design time, parameters are bound as external XQuery
  variables (node parameters directly to the live element), and
  ``//tag`` steps are served from the per-document tag index.
* ``text`` — the pre-prepared baseline: parameter values are spliced
  into the query text and the result is re-lexed/re-parsed on every
  evaluation.

The gap is largest where evaluation itself is cheap (the conflict
check: one pinned reviewer, ~5x on 64 KiB) and smallest where the
simplified check still computes aggregates (the workload check — the
same effect the paper reports for figure 1(b)).
"""

import statistics
import time

import pytest


def test_conflict_prepared(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"prepared-{size_kib}KiB"
    violated = benchmark(conflict_scenario.optimized_check)
    assert violated is False


def test_conflict_text_reparse(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"prepared-{size_kib}KiB"
    violated = benchmark(conflict_scenario.optimized_check_text)
    assert violated is False


def test_workload_prepared(benchmark, workload_scenario, size_kib):
    benchmark.group = f"prepared-{size_kib}KiB"
    violated = benchmark(workload_scenario.optimized_check)
    assert violated is False


def test_workload_text_reparse(benchmark, workload_scenario, size_kib):
    benchmark.group = f"prepared-{size_kib}KiB"
    violated = benchmark(workload_scenario.optimized_check_text)
    assert violated is False


def test_prepared_detects_illegal(benchmark, conflict_scenario,
                                  size_kib):
    benchmark.group = f"prepared-{size_kib}KiB"
    violated = benchmark(conflict_scenario.optimized_check,
                         conflict_scenario.illegal_operation)
    assert violated is True


def test_prepared_speedup_64kib(conflict_scenario, size_kib):
    """Acceptance gate: prepared + indexed checking is at least 2x
    faster than the text-reparse baseline on the 64 KiB corpus.

    Measured by interleaved medians so the two paths see the same
    machine state; the observed ratio is ~5x, so 2x leaves headroom
    for CI jitter.
    """
    if size_kib != 64:
        pytest.skip("speedup gate is calibrated for the 64 KiB corpus")
    conflict_scenario.optimized_check()
    conflict_scenario.optimized_check_text()
    prepared, text = [], []
    for _ in range(30):
        start = time.perf_counter()
        conflict_scenario.optimized_check()
        prepared.append(time.perf_counter() - start)
        start = time.perf_counter()
        conflict_scenario.optimized_check_text()
        text.append(time.perf_counter() - start)
    speedup = statistics.median(text) / statistics.median(prepared)
    assert speedup >= 2.0, (
        f"prepared path only {speedup:.2f}x faster than text re-parse")
