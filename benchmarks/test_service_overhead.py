"""Ablation A4 — what the thread-safe service layer costs.

The CheckingService wraps every checker call in a reader-writer lock
(plus commit-log bookkeeping on applied updates) and, by default,
serves reads from pinned MVCC-lite snapshots instead of the lock.
These benchmarks put a number on both wrappers: the same rejected
update through the bare guard vs. through the service (writer path),
a full consistency check direct vs. through the service in each read
mode (snapshot-pinned vs. read-locked), and the reader path under
actual thread-level concurrency — again in both modes, so the price
or payoff of snapshot pinning is one table row away from the lock
baseline it replaced.
"""

import threading

from repro.service import CheckingService


def _service_for(scenario, snapshot_reads=True):
    return CheckingService.from_checker(scenario.guard,
                                        snapshot_reads=snapshot_reads)


def test_guard_reject_direct(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"service-{size_kib}KiB"
    decision = benchmark(conflict_scenario.guard.try_execute,
                         conflict_scenario.illegal_update)
    assert not decision.legal


def test_guard_reject_through_service(benchmark, conflict_scenario,
                                      size_kib):
    benchmark.group = f"service-{size_kib}KiB"
    service = _service_for(conflict_scenario)
    decision = benchmark(service.try_execute,
                         conflict_scenario.illegal_update)
    assert not decision.legal


def test_verify_direct(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"service-verify-{size_kib}KiB"
    violated = benchmark(conflict_scenario.guard.verify_consistency)
    assert violated == []


def test_verify_through_service_locked(benchmark, conflict_scenario,
                                       size_kib):
    """The read-lock path: every check takes the store's read lock."""
    benchmark.group = f"service-verify-{size_kib}KiB"
    service = _service_for(conflict_scenario, snapshot_reads=False)
    violated = benchmark(service.verify_consistency)
    assert violated == []


def test_verify_through_service_snapshot(benchmark, conflict_scenario,
                                         size_kib):
    """The snapshot path: pin the published version, never lock."""
    benchmark.group = f"service-verify-{size_kib}KiB"
    service = _service_for(conflict_scenario)
    violated = benchmark(service.verify_consistency)
    assert violated == []


def _concurrent_verifies(service):
    def parallel_verifies():
        results: list[list[str]] = []

        def verify():
            results.append(service.verify_consistency())

        threads = [threading.Thread(target=verify) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == [] for result in results)

    return parallel_verifies


def test_verify_concurrent_readers_locked(benchmark, conflict_scenario,
                                          size_kib):
    """Four reader threads verifying at once through the read lock
    (GIL-bound, so ideally ~4x the single-reader time; a serializing
    bug would show up as much worse)."""
    benchmark.group = f"service-verify-{size_kib}KiB"
    service = _service_for(conflict_scenario, snapshot_reads=False)
    benchmark(_concurrent_verifies(service))


def test_verify_concurrent_readers_snapshot(benchmark,
                                            conflict_scenario,
                                            size_kib):
    """The same four-reader burst against pinned snapshots — no lock
    acquisition at all on the read side."""
    benchmark.group = f"service-verify-{size_kib}KiB"
    service = _service_for(conflict_scenario)
    benchmark(_concurrent_verifies(service))
