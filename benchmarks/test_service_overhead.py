"""Ablation A4 — what the thread-safe service layer costs.

The CheckingService wraps every checker call in a reader-writer lock
(plus commit-log bookkeeping on applied updates).  These benchmarks put
a number on that wrapper: the same rejected update through the bare
guard vs. through the service (writer path), a full consistency check
direct vs. through the service (reader path), and the reader path under
actual thread-level concurrency.
"""

import threading

from repro.service import CheckingService


def _service_for(scenario):
    return CheckingService.from_checker(scenario.guard)


def test_guard_reject_direct(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"service-{size_kib}KiB"
    decision = benchmark(conflict_scenario.guard.try_execute,
                         conflict_scenario.illegal_update)
    assert not decision.legal


def test_guard_reject_through_service(benchmark, conflict_scenario,
                                      size_kib):
    benchmark.group = f"service-{size_kib}KiB"
    service = _service_for(conflict_scenario)
    decision = benchmark(service.try_execute,
                         conflict_scenario.illegal_update)
    assert not decision.legal


def test_verify_direct(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"service-verify-{size_kib}KiB"
    violated = benchmark(conflict_scenario.guard.verify_consistency)
    assert violated == []


def test_verify_through_service(benchmark, conflict_scenario, size_kib):
    benchmark.group = f"service-verify-{size_kib}KiB"
    service = _service_for(conflict_scenario)
    violated = benchmark(service.verify_consistency)
    assert violated == []


def test_verify_concurrent_readers(benchmark, conflict_scenario,
                                   size_kib):
    """Four reader threads verifying at once — the reader-lock path
    under real contention (GIL-bound, so ideally ~4x the single-reader
    time; a serializing bug would show up as much worse)."""
    benchmark.group = f"service-verify-{size_kib}KiB"
    service = _service_for(conflict_scenario)

    def parallel_verifies():
        results: list[list[str]] = []

        def verify():
            results.append(service.verify_consistency())

        threads = [threading.Thread(target=verify) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == [] for result in results)

    benchmark(parallel_verifies)
