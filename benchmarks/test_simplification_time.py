"""Footnote 4 — cost of the simplification itself.

The paper reports that the simplified constraints of examples 1 and 6
were generated in *less than 50 ms*.  These benchmarks time the two
design-time stages separately:

* ``simp`` proper — ``Optimize_{Γ∪Δ}(After^U(Γ))`` on the compiled
  denials;
* the full pattern registration — update analysis, Δ derivation, Simp
  and XQuery translation for both constraints.
"""

import pytest

from repro.core import ConstraintSchema
from repro.datagen.running_example import (
    CONFERENCE_WORKLOAD,
    CONFLICT_OF_INTEREST,
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from repro.simplify import simp
from repro.xupdate import analyze_operation, parse_modifications


@pytest.fixture(scope="module")
def compiled():
    schema = ConstraintSchema(
        [PUB_DTD, REV_DTD],
        [CONFLICT_OF_INTEREST, CONFERENCE_WORKLOAD],
        names=["conflict_of_interest", "conference_workload"])
    operation = parse_modifications(
        submission_xupdate(1, 1, "x", "y"))[0]
    analyzed = analyze_operation(operation, schema.relational)
    return schema, analyzed


def test_simp_conflict_of_interest(benchmark, compiled):
    schema, analyzed = compiled
    benchmark.group = "simplification"
    denials = schema.constraint("conflict_of_interest").denials
    result = benchmark(simp, denials, analyzed.pattern,
                       analyzed.hypotheses)
    assert len(result) == 2
    assert benchmark.stats.stats.mean < 0.050  # the paper's 50 ms claim


def test_simp_conference_workload(benchmark, compiled):
    schema, analyzed = compiled
    benchmark.group = "simplification"
    denials = schema.constraint("conference_workload").denials
    result = benchmark(simp, denials, analyzed.pattern,
                       analyzed.hypotheses)
    assert len(result) == 1
    assert benchmark.stats.stats.mean < 0.050


def test_full_pattern_registration(benchmark, compiled):
    benchmark.group = "simplification"

    def register():
        schema = ConstraintSchema(
            [PUB_DTD, REV_DTD],
            [CONFLICT_OF_INTEREST, CONFERENCE_WORKLOAD])
        schema.register_pattern(submission_xupdate(1, 1, "x", "y"))
        return schema

    schema = benchmark(register)
    assert len(schema.patterns) == 1
