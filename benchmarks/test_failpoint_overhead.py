"""Failpoint overhead: the unarmed fast path must stay near-free.

The failpoint contract (design constraint 1 of
``repro.testing.failpoints``) is that an unarmed site costs one
empty-dict lookup — cheap enough to leave the instrumentation in the
production apply/check/commit path.  Three curves:

* ``baseline``  — the same loop around a bare ``dict.get`` call, the
  theoretical floor;
* ``unarmed``   — ``fail.point()`` with nothing armed (the shipped
  configuration); must track the baseline within a small factor;
* ``armed-miss``— another site armed, so the lookup hits a one-entry
  dict but still returns ``None``; the worst non-firing case.

Run via ``make bench`` (or ``pytest benchmarks/ --benchmark-only``).
"""

from repro.testing.failpoints import FailPointRegistry

ROUNDS = 10_000
SITE = "xupdate.apply.pre_op"
OTHER = "core.guard.post_check"


def _loop_point(registry: FailPointRegistry) -> None:
    point = registry.point
    for _ in range(ROUNDS):
        point(SITE)


def test_baseline_dict_get(benchmark):
    benchmark.group = "failpoint-unarmed"
    lookup: dict = {}

    def loop() -> None:
        get = lookup.get
        for _ in range(ROUNDS):
            get(SITE)

    benchmark(loop)


def test_unarmed_point(benchmark):
    benchmark.group = "failpoint-unarmed"
    registry = FailPointRegistry()
    benchmark(_loop_point, registry)


def test_armed_other_site_miss(benchmark):
    benchmark.group = "failpoint-unarmed"
    registry = FailPointRegistry()
    with registry.armed({OTHER: "count:1"}):
        benchmark(_loop_point, registry)


def test_unarmed_overhead_factor():
    """Non-benchmark gate: unarmed point within 60x of a dict lookup.

    A pure ``dict.get`` is a handful of nanoseconds, so the generous
    factor still rejects any structural regression (taking the lock,
    counting hits, formatting) while tolerating noisy shared runners.
    """
    import time

    lookup: dict = {}
    registry = FailPointRegistry()

    def timed(callable_, *args) -> float:
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            callable_(*args)
            best = min(best, time.perf_counter() - start)
        return best

    def baseline() -> None:
        get = lookup.get
        for _ in range(ROUNDS):
            get(SITE)

    floor = timed(baseline)
    unarmed = timed(_loop_point, registry)
    assert unarmed < floor * 60, \
        f"unarmed fail.point too slow: {unarmed:.6f}s vs dict.get " \
        f"floor {floor:.6f}s over {ROUNDS} calls"
