"""Shared benchmark harness.

The paper's evaluation (section 7) runs on documents of 32-256 MB; this
harness defaults to 32-128 KiB so a full benchmark run stays in a CI
budget (the engine is an interpreted Python substitute for eXist — see
DESIGN.md).  Override with::

    REPRO_BENCH_SIZES_KIB=64,128,256,512 pytest benchmarks/ --benchmark-only

Each figure benchmark produces one timing per (curve, size); the
benchmark names embed both, so the pytest-benchmark table *is* the
figure's data series.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core import BruteForceChecker, IntegrityGuard
from repro.datagen import (
    corpus_size_bytes,
    generate_corpus,
    illegal_submission,
    legal_submission,
    spec_for_size,
)
from repro.datagen.running_example import make_schema
from repro.xupdate import parse_modifications
from repro.xupdate.analyze import signature_of


def bench_sizes_kib() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SIZES_KIB", "32,64,128")
    return [int(piece) for piece in raw.split(",") if piece.strip()]


def pytest_generate_tests(metafunc):
    if "size_kib" in metafunc.fixturenames:
        metafunc.parametrize("size_kib", bench_sizes_kib())


@pytest.fixture(scope="session")
def schema():
    return make_schema()


_CORPora_CACHE: dict[int, tuple] = {}


@pytest.fixture()
def corpus(size_kib):
    """(pub_doc, rev_doc, actual_bytes) for one target size, cached."""
    if size_kib not in _CORPora_CACHE:
        spec = spec_for_size(size_kib * 1024)
        documents = generate_corpus(spec)
        _CORPora_CACHE[size_kib] = (
            documents[0], documents[1],
            corpus_size_bytes(documents))
    return _CORPora_CACHE[size_kib]


@pytest.fixture()
def rng():
    return random.Random(1849)


class CheckScenario:
    """Pre-resolved artifacts for benchmarking one constraint."""

    def __init__(self, schema, documents, constraint_name, rng,
                 illegal_kind):
        self.schema = schema
        self.documents = list(documents)
        self.rev_doc = documents[1]
        self.constraint = schema.constraint(constraint_name)
        self.guard = IntegrityGuard(schema, self.documents)
        self.brute = BruteForceChecker(schema, self.documents)
        self.legal_update = legal_submission(self.rev_doc, rng)
        self.illegal_update = illegal_submission(self.rev_doc, rng,
                                                 illegal_kind)
        operation = parse_modifications(self.legal_update)[0]
        checks = schema.checks_for(
            signature_of(operation, schema.relational))
        assert checks is not None
        self.pattern_checks = checks
        self.legal_operation = operation
        self.illegal_operation = parse_modifications(
            self.illegal_update)[0]

    # -- the three curves of figure 1 ---------------------------------------

    def full_check(self) -> bool:
        """Curve (i): evaluate the original constraint (diamonds)."""
        from repro.xquery.engine import query_truth
        return any(query_truth(query.text, self.documents)
                   for query in self.constraint.full_queries)

    def optimized_check(self, operation=None) -> bool:
        """Curve (ii): evaluate the simplified constraint (squares).

        Uses the prepared plans (compile-once ASTs, variable-bound
        parameters) — the production path of :class:`IntegrityGuard`.
        """
        operation = operation or self.legal_operation
        bindings = self.pattern_checks.analyzed.bind(self.rev_doc,
                                                     operation)
        for check in self.pattern_checks.optimized:
            if check.constraint.name != self.constraint.name:
                continue
            for query in check.queries:
                if query.truth(self.documents, bindings):
                    return True
        return False

    def optimized_check_text(self, operation=None) -> bool:
        """The pre-prepared-plan baseline: splice parameter text into
        the check and re-lex/re-parse it on every evaluation."""
        from repro.xquery.engine import query_truth
        operation = operation or self.legal_operation
        bindings = self.pattern_checks.analyzed.bind(self.rev_doc,
                                                     operation)
        for check in self.pattern_checks.optimized:
            if check.constraint.name != self.constraint.name:
                continue
            for query in check.queries:
                if query_truth(query.instantiate(bindings),
                               self.documents):
                    return True
        return False

    def update_check_rollback(self, update=None) -> bool:
        """Curve (iii): execute, verify the original constraint, undo
        (triangles)."""
        from repro.xupdate.apply import apply_operation
        operation = update or self.legal_operation
        record = apply_operation(self.rev_doc, operation)
        try:
            return self.full_check()
        finally:
            record.rollback()


@pytest.fixture()
def conflict_scenario(schema, corpus, rng):
    pub_doc, rev_doc, _ = corpus
    return CheckScenario(schema, [pub_doc, rev_doc],
                         "conflict_of_interest", rng, "conflict")


@pytest.fixture()
def workload_scenario(schema, corpus, rng):
    pub_doc, rev_doc, _ = corpus
    return CheckScenario(schema, [pub_doc, rev_doc],
                         "conference_workload", rng, "workload")
